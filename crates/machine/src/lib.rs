//! The full Alewife-style machine model.
//!
//! A [`Machine`] assembles `n` nodes — each a processor, a combined
//! direct-mapped cache (with optional victim cache), a CMMU protocol
//! engine and a slice of globally shared memory — on a 2-D mesh, and
//! executes one [`Program`] per node under a deterministic event loop.
//!
//! The pieces the paper's methodology depends on are all here:
//!
//! * **trap model** — protocol extension software occupies the home
//!   node's processor, stealing cycles from user code (the essential
//!   cost of software-extended coherence);
//! * **livelock watchdog** (§4.1) — a timer that detects handler
//!   storms and temporarily shuts off asynchronous events so user code
//!   makes progress (armed for the `S_{NB,ACK}` protocols);
//! * **BUSY/retry** — transient directory states bounce requests
//!   rather than queueing them, Alewife's livelock-free design;
//! * **coherence sanitizer** — an opt-in, zero-cost-when-off checking
//!   stack (see [`limitless_core::CheckLevel`]): per-event directory
//!   invariants, a shadow registry asserting the single-writer
//!   invariant on every fill, an inv/ack balance ledger, a
//!   bounded-retry watchdog and a full quiesce audit (enable with
//!   `check_level`);
//! * **instruction-fetch model** — code streams through the combined
//!   cache and can thrash against data (Figure 3).
//!
//! # Examples
//!
//! ```
//! use limitless_machine::{Machine, MachineConfig, Op, Program, ScriptProgram};
//! use limitless_core::ProtocolSpec;
//! use limitless_sim::Addr;
//!
//! let cfg = MachineConfig::builder()
//!     .nodes(4)
//!     .protocol(ProtocolSpec::limitless(1))
//!     .check_coherence(true)
//!     .build();
//! let mut m = Machine::new(cfg);
//! let programs = (0..4)
//!     .map(|_| {
//!         Box::new(ScriptProgram::new(vec![
//!             Op::Read(Addr(0x1000)),
//!             Op::Barrier,
//!         ])) as Box<dyn Program>
//!     })
//!     .collect();
//! m.load(programs);
//! let report = m.run();
//! assert!(report.cycles.as_u64() > 0);
//! ```

pub mod config;
mod dense;
pub mod lane_sync;
pub mod machine;
pub mod program;
pub mod registry;
mod run_loop;
mod shard;
pub mod stats;
mod sync;
mod trap_path;

pub use config::{
    ConfigError, EngineMode, MachineConfig, MachineConfigBuilder, ProcTiming, WatchdogConfig,
};
pub use limitless_core::CheckLevel;
pub use machine::Machine;
pub use program::{FnProgram, Op, Program, Rmw, ScriptProgram};
pub use registry::CoherenceRegistry;
pub use stats::{BillAggregator, MachineStats, RunReport};

#[cfg(test)]
mod tests;
