//! The event-lane execution context shared by the serial and sharded
//! engines.
//!
//! A [`Shard`] owns a contiguous range of nodes, their event queue,
//! their endpoint slots of the network model and (in windowed mode)
//! a private write overlay of shared memory. The serial engine is the
//! degenerate case: one shard owning every node, running a single
//! unbounded window — so both engines execute the *same* handler code
//! over the *same* `(time, key)` event order, and the sharded engine
//! inherits the serial engine's semantics by construction.
//!
//! # The `(time, key)` total order
//!
//! Every event carries a structural tie-break key allocated by its
//! origin node ([`crate::machine::NodeCtx::next_key`]). Each lane
//! executes its events in strictly increasing `(time, key)` order;
//! events of different lanes inside one conservative window are
//! causally independent (the window length is the minimum cross-node
//! network latency), so any interleaving of lanes yields the same
//! per-lane state trajectories. The serial engine's global order is
//! one such interleaving — which is the bit-identity argument, tested
//! differentially over the whole application × protocol matrix.

use std::sync::{Mutex, RwLock};

use limitless_core::Outcome;
use limitless_net::{Network, TxPhase};
use limitless_sim::{Addr, BlockAddr, Cycle, EventQueue, FxHashMap, NodeId};
use limitless_stats::WorkerSetTracker;

use crate::config::MachineConfig;
use crate::dense::DenseMap;
use crate::machine::{Ev, NodeCtx, Payload, TieKey};
use crate::registry::CoherenceRegistry;

/// Maps a node index to its event lane: contiguous ranges, every lane
/// non-empty for `lanes <= total`.
#[inline]
pub(crate) fn lane_of(node: usize, lanes: usize, total: usize) -> usize {
    node * lanes / total
}

/// Shared-memory access discipline for one lane.
pub(crate) enum MemCtx {
    /// The serial engine owns the memory shadow outright; reads and
    /// writes go straight through.
    Direct(DenseMap<Addr, u64>),
    /// A windowed lane reads through its private overlay into the
    /// global (frozen-for-the-window) shadow and records writes in a
    /// log that the window-boundary flush replays in lane order.
    Windowed {
        overlay: FxHashMap<Addr, u64>,
        wlog: Vec<(Addr, u64)>,
    },
}

impl MemCtx {
    pub(crate) fn load(&self, global: &DenseMap<Addr, u64>, addr: Addr) -> u64 {
        match self {
            MemCtx::Direct(m) => m.get(addr).copied().unwrap_or(0),
            MemCtx::Windowed { overlay, .. } => match overlay.get(&addr) {
                Some(&v) => v,
                None => global.get(addr).copied().unwrap_or(0),
            },
        }
    }

    pub(crate) fn store(&mut self, addr: Addr, value: u64) {
        match self {
            MemCtx::Direct(m) => *m.entry(addr) = value,
            MemCtx::Windowed { overlay, wlog } => {
                overlay.insert(addr, value);
                wlog.push((addr, value));
            }
        }
    }
}

/// Per-run state shared (read-only or lock-protected) by every lane.
///
/// The memory shadow is behind an `RwLock`: lanes hold read access for
/// the duration of a window (writes go to their overlays) and the
/// window-boundary flush takes the write lock alone. The sanitizer
/// registry and the worker-set tracker are optional diagnostics whose
/// operations within a window commute (set insertions/removals on
/// causally independent blocks), so a mutex suffices.
pub(crate) struct Shared<'a> {
    pub(crate) cfg: &'a MachineConfig,
    pub(crate) mem: &'a RwLock<DenseMap<Addr, u64>>,
    pub(crate) registry: Option<&'a Mutex<CoherenceRegistry>>,
    pub(crate) tracker: Option<&'a Mutex<WorkerSetTracker>>,
}

/// One window's execution context: the shared state plus the read
/// guard on the global memory shadow, rebuilt each window.
pub(crate) struct Wctx<'a> {
    pub(crate) cfg: &'a MachineConfig,
    pub(crate) gmem: &'a DenseMap<Addr, u64>,
    pub(crate) registry: Option<&'a Mutex<CoherenceRegistry>>,
    pub(crate) tracker: Option<&'a Mutex<WorkerSetTracker>>,
}

impl Wctx<'_> {
    /// Runs `f` against the sanitizer registry, if checking is on.
    #[inline]
    pub(crate) fn registry<R>(&self, f: impl FnOnce(&mut CoherenceRegistry) -> R) -> Option<R> {
        self.registry
            .map(|m| f(&mut m.lock().expect("registry lock poisoned")))
    }

    /// Whether the sanitizer registry is attached.
    #[inline]
    pub(crate) fn checking(&self) -> bool {
        self.registry.is_some()
    }
}

/// One event lane: a contiguous range of nodes with their own queue,
/// inline slot, network endpoints and (windowed mode) memory overlay.
pub(crate) struct Shard {
    /// This lane's index.
    pub(crate) lane: usize,
    /// Global index of the first owned node.
    pub(crate) first: usize,
    /// Total lanes in the run.
    pub(crate) lanes: usize,
    /// Total nodes in the machine (for home/lane arithmetic).
    pub(crate) total_nodes: usize,
    /// The owned nodes, `nodes[i]` being global node `first + i`.
    pub(crate) nodes: Vec<NodeCtx>,
    /// Per-lane clone of the network model: a lane only exercises the
    /// endpoint queues (tx, loopback, rx) of nodes it owns, and the
    /// per-clone statistics are merged after the run.
    pub(crate) net: Network,
    pub(crate) queue: EventQueue<Ev>,
    /// The inline dispatch slot: an event strictly earlier (in
    /// `(time, key)`) than everything queued skips the schedule→pop
    /// round trip and waits here for the run loop. See
    /// [`Shard::post_keyed`].
    pub(crate) slot: Option<(Cycle, TieKey, Ev)>,
    /// Events executed by this lane (queue pops, slot takes and
    /// chained inline steps — a partition-independent count).
    pub(crate) executed: u64,
    /// Owned nodes whose programs have finished.
    pub(crate) finished: usize,
    pub(crate) finish_time: Cycle,
    pub(crate) mem: MemCtx,
    /// Outgoing cross-lane events, one mailbox per destination lane,
    /// drained by the driver at window boundaries. (Only `NetArrive`
    /// and barrier-release events cross lanes, and both are bounded
    /// below by the window length.)
    pub(crate) outboxes: Vec<Vec<(Cycle, TieKey, Ev)>>,
    /// Current window end (exclusive); `Cycle(u64::MAX)` in serial
    /// mode.
    pub(crate) t_end: Cycle,
    /// Event-limit backstop (shared across lanes at boundary checks;
    /// enforced per-event here for the serial engine).
    pub(crate) max_events: u64,
    /// Scratch directory-event outcome, reused across every home
    /// event this lane processes: the engine builds each result in
    /// place ([`limitless_core::DirEngine::handle_into`]), so the
    /// ~300-byte struct is never copied or re-initialized per event
    /// and a heap-spilled send burst keeps its allocation for the
    /// next burst.
    pub(crate) scratch_out: Outcome,
}

impl Shard {
    #[inline]
    pub(crate) fn owns(&self, n: NodeId) -> bool {
        let i = n.index();
        i >= self.first && i < self.first + self.nodes.len()
    }

    #[inline]
    pub(crate) fn node(&self, n: NodeId) -> &NodeCtx {
        &self.nodes[n.index() - self.first]
    }

    #[inline]
    pub(crate) fn node_mut(&mut self, n: NodeId) -> &mut NodeCtx {
        &mut self.nodes[n.index() - self.first]
    }

    #[inline]
    pub(crate) fn home_of(&self, block: BlockAddr) -> NodeId {
        NodeId::from_index(limitless_sim::fast_mod(block.0, self.total_nodes as u64) as usize)
    }

    /// Allocates the next tie-break key for an event scheduled by
    /// `origin` (which must be an owned node — handlers only ever run
    /// at owned nodes).
    #[inline]
    pub(crate) fn next_key(&mut self, origin: NodeId) -> TieKey {
        self.node_mut(origin).next_key(origin)
    }

    /// Schedules `ev` at `(at, fresh key from origin)`.
    #[inline]
    pub(crate) fn post(&mut self, origin: NodeId, at: Cycle, ev: Ev) {
        let key = self.next_key(origin);
        self.post_keyed(at, key, ev);
    }

    /// Schedules a pre-keyed event: cross-lane targets go to the
    /// destination lane's mailbox; owned targets go to the inline slot
    /// when provably next, else to the queue.
    ///
    /// Slot invariant: whenever the slot is occupied, its `(time,
    /// key)` is strictly below the queue head's, so taking the slot
    /// first preserves the lane's total order. A later post that beats
    /// the slot swaps in and demotes the old occupant to the queue
    /// (still below the old head, so the invariant survives both
    /// ways).
    pub(crate) fn post_keyed(&mut self, at: Cycle, key: TieKey, ev: Ev) {
        let target = ev.target().index();
        if self.lanes > 1 {
            let lane = lane_of(target, self.lanes, self.total_nodes);
            if lane != self.lane {
                debug_assert!(at >= self.t_end, "cross-lane event inside its own window");
                self.outboxes[lane].push((at, key, ev));
                return;
            }
        }
        match self.slot {
            None => {
                if self
                    .queue
                    .peek()
                    .is_none_or(|(pt, pk)| (at, key) < (pt, pk))
                {
                    self.slot = Some((at, key, ev));
                } else {
                    self.queue.schedule_keyed(at, key, ev);
                }
            }
            Some((st, sk, _)) => {
                if (at, key) < (st, sk) {
                    let (ot, ok, oev) = self.slot.replace((at, key, ev)).expect("slot occupied");
                    self.queue.schedule_keyed(ot, ok, oev);
                } else {
                    self.queue.schedule_keyed(at, key, ev);
                }
            }
        }
    }

    /// Transmits `payload` from `src` at `at`: the loopback FIFO
    /// delivers locally, a mesh send resolves its receive side at the
    /// destination's lane via [`Ev::NetArrive`] (the only protocol
    /// event that crosses lanes).
    pub(crate) fn send_payload(&mut self, src: NodeId, dst: NodeId, payload: Payload, at: Cycle) {
        let flits = payload.flits();
        match self.net.tx(at, src, dst, flits) {
            TxPhase::Loopback { deliver } => {
                self.post(src, deliver, Ev::Deliver { src, dst, payload });
            }
            TxPhase::Mesh { head_arrives } => {
                self.post(
                    src,
                    head_arrives,
                    Ev::NetArrive {
                        src,
                        dst,
                        flits,
                        sent_at: at,
                        payload,
                    },
                );
            }
        }
    }

    /// Executes every owned event with `time < t_end` in `(time, key)`
    /// order. On return, the inline slot is flushed to the queue so
    /// boundary logic (next-window computation, termination) sees the
    /// complete pending set.
    pub(crate) fn run_window(&mut self, cx: &Wctx) {
        let t_end = self.t_end;
        loop {
            let (now, ev) = match self.slot {
                Some((t, _, _)) => {
                    if t >= t_end {
                        break;
                    }
                    let (t, _, ev) = self.slot.take().expect("slot occupied");
                    // Safe: the slot is strictly below the queue head.
                    self.queue.advance_to(t);
                    (t, ev)
                }
                None => {
                    if self.queue.peek_time().is_none_or(|pt| pt >= t_end) {
                        break;
                    }
                    self.queue.pop().expect("peeked event vanished")
                }
            };
            self.executed += 1;
            assert!(
                self.executed < self.max_events,
                "event limit exceeded: probable livelock at {now}"
            );
            self.handle(cx, now, ev);
        }
        if let Some((t, k, ev)) = self.slot.take() {
            self.queue.schedule_keyed(t, k, ev);
        }
    }
}
