//! The event-lane execution context shared by the serial and sharded
//! engines.
//!
//! A [`Shard`] owns a contiguous range of nodes, their event queue,
//! their endpoint slots of the network model and a full private
//! replica of the shared-memory shadow. The serial engine is the
//! degenerate case: one shard owning every node, running a single
//! unbounded window — so both engines execute the *same* handler code
//! over the *same* `(time, key)` event order, and the sharded engine
//! inherits the serial engine's semantics by construction.
//!
//! # The `(time, key)` total order
//!
//! Every event carries a structural tie-break key allocated by its
//! origin node ([`crate::machine::NodeCtx::next_key`]). Each lane
//! executes its events in strictly increasing `(time, key)` order;
//! events of different lanes inside one conservative window are
//! causally independent (window ends are bounded by the per-lane-pair
//! lookahead matrix), so any interleaving of lanes yields the same
//! per-lane state trajectories. The serial engine's global order is
//! one such interleaving — which is the bit-identity argument, tested
//! differentially over the whole application × protocol matrix.
//!
//! # Memory replicas
//!
//! In sharded mode every lane holds its own full `DenseMap` replica of
//! the memory shadow. Stores apply locally and are appended to a write
//! log tagged with the executing event's `(time, key)`; the log is
//! broadcast to peer lanes at publish boundaries and each lane applies
//! remote writes interleaved with its own execution in global `(time,
//! key)` order (see [`Shard::apply_rwrites_below`]). Same-address
//! accesses on different lanes are separated by at least the lane-pair
//! lookahead (they require a protocol round trip through the mesh), so
//! every replica observes remote writes before any read that follows
//! them in the serial order, and all replicas converge to the same
//! final image.

use std::sync::Mutex;

use limitless_core::Outcome;
use limitless_net::{Network, TxPhase};
use limitless_sim::{Addr, BlockAddr, Cycle, EventQueue, NodeId};
use limitless_stats::WorkerSetTracker;

use crate::config::MachineConfig;
use crate::dense::DenseMap;
use crate::machine::{Ev, NodeCtx, Payload, TieKey};
use crate::registry::CoherenceRegistry;

/// Maps a node index to its event lane: contiguous ranges, every lane
/// non-empty for `lanes <= total`.
#[inline]
pub(crate) fn lane_of(node: usize, lanes: usize, total: usize) -> usize {
    node * lanes / total
}

/// One logged store: the executing event's `(time, key)` tag plus the
/// address and value. Tag order is exactly the serial execution order,
/// so replaying a merged log reproduces the serial memory image.
pub(crate) type WriteRec = (Cycle, TieKey, Addr, u64);

/// Per-run state shared by every lane. The sanitizer registry and the
/// worker-set tracker are optional diagnostics whose operations within
/// a window commute (set insertions/removals on causally independent
/// blocks), so a mutex suffices.
pub(crate) struct Wctx<'a> {
    pub(crate) cfg: &'a MachineConfig,
    pub(crate) registry: Option<&'a Mutex<CoherenceRegistry>>,
    pub(crate) tracker: Option<&'a Mutex<WorkerSetTracker>>,
}

impl Wctx<'_> {
    /// Runs `f` against the sanitizer registry, if checking is on.
    #[inline]
    pub(crate) fn registry<R>(&self, f: impl FnOnce(&mut CoherenceRegistry) -> R) -> Option<R> {
        self.registry
            .map(|m| f(&mut m.lock().expect("registry lock poisoned")))
    }

    /// Whether the sanitizer registry is attached.
    #[inline]
    pub(crate) fn checking(&self) -> bool {
        self.registry.is_some()
    }
}

/// One event lane: a contiguous range of nodes with their own queue,
/// inline slot, network endpoints and memory-shadow replica.
pub(crate) struct Shard {
    /// This lane's index.
    pub(crate) lane: usize,
    /// Global index of the first owned node.
    pub(crate) first: usize,
    /// Total lanes in the run.
    pub(crate) lanes: usize,
    /// Total nodes in the machine (for home/lane arithmetic).
    pub(crate) total_nodes: usize,
    /// The owned nodes, `nodes[i]` being global node `first + i`.
    pub(crate) nodes: Vec<NodeCtx>,
    /// Per-lane clone of the network model: a lane only exercises the
    /// endpoint queues (tx, loopback, rx) of nodes it owns, and the
    /// per-clone statistics are merged after the run.
    pub(crate) net: Network,
    pub(crate) queue: EventQueue<Ev>,
    /// The inline dispatch slot: an event strictly earlier (in
    /// `(time, key)`) than everything queued skips the schedule→pop
    /// round trip and waits here for the run loop. See
    /// [`Shard::post_keyed`].
    pub(crate) slot: Option<(Cycle, TieKey, Ev)>,
    /// Events executed by this lane (queue pops, slot takes and
    /// chained inline steps — a partition-independent count).
    pub(crate) executed: u64,
    /// Owned nodes whose programs have finished.
    pub(crate) finished: usize,
    pub(crate) finish_time: Cycle,
    /// This lane's full replica of the memory shadow.
    pub(crate) mem: DenseMap<Addr, u64>,
    /// Whether stores are logged for cross-lane broadcast (sharded
    /// mode only; the serial engine writes straight through).
    pub(crate) record_writes: bool,
    /// Stores executed by this lane since the last flush, tagged with
    /// their executing event's `(time, key)`.
    pub(crate) wlog: Vec<WriteRec>,
    /// Remote writes received from peer lanes, sorted by tag and
    /// consumed from `rw_pos` as execution passes each tag.
    pub(crate) rwrites: Vec<WriteRec>,
    pub(crate) rw_pos: usize,
    /// Tag of the earliest unapplied remote write (`(MAX, MAX)` when
    /// none): events at or beyond this gate must not execute — or be
    /// chained inline — before the write is applied.
    pub(crate) rw_gate: (Cycle, TieKey),
    /// The `(time, key)` of the event currently being executed; tags
    /// logged stores so replicas replay them in serial order.
    pub(crate) cur_time: Cycle,
    pub(crate) cur_key: TieKey,
    /// This lane's row of the lookahead matrix (`dist_row[b] =
    /// D[lane][b]`): every cross-lane emission must clear `cur_time +
    /// dist_row[b]`, which the sanitizer enforces.
    pub(crate) dist_row: Vec<u64>,
    /// Outgoing cross-lane events, one mailbox per destination lane,
    /// flushed to the peers' inboxes at publish boundaries. (Only
    /// `NetArrive` and barrier-release events cross lanes, and both
    /// are bounded below by the lane-pair lookahead.)
    pub(crate) outboxes: Vec<Vec<(Cycle, TieKey, Ev)>>,
    /// Current window end (exclusive); `Cycle(u64::MAX)` in serial
    /// mode.
    pub(crate) t_end: Cycle,
    /// Event-limit backstop (shared across lanes at boundary checks;
    /// enforced per-event here for the serial engine).
    pub(crate) max_events: u64,
    /// Scratch directory-event outcome, reused across every home
    /// event this lane processes: the engine builds each result in
    /// place ([`limitless_core::DirEngine::handle_into`]), so the
    /// ~300-byte struct is never copied or re-initialized per event
    /// and a heap-spilled send burst keeps its allocation for the
    /// next burst.
    pub(crate) scratch_out: Outcome,
}

impl Shard {
    #[inline]
    pub(crate) fn owns(&self, n: NodeId) -> bool {
        let i = n.index();
        i >= self.first && i < self.first + self.nodes.len()
    }

    #[inline]
    pub(crate) fn node(&self, n: NodeId) -> &NodeCtx {
        &self.nodes[n.index() - self.first]
    }

    #[inline]
    pub(crate) fn node_mut(&mut self, n: NodeId) -> &mut NodeCtx {
        &mut self.nodes[n.index() - self.first]
    }

    #[inline]
    pub(crate) fn home_of(&self, block: BlockAddr) -> NodeId {
        NodeId::from_index(limitless_sim::fast_mod(block.0, self.total_nodes as u64) as usize)
    }

    /// Allocates the next tie-break key for an event scheduled by
    /// `origin` (which must be an owned node — handlers only ever run
    /// at owned nodes).
    #[inline]
    pub(crate) fn next_key(&mut self, origin: NodeId) -> TieKey {
        self.node_mut(origin).next_key(origin)
    }

    /// Schedules `ev` at `(at, fresh key from origin)`.
    #[inline]
    pub(crate) fn post(&mut self, origin: NodeId, at: Cycle, ev: Ev) {
        let key = self.next_key(origin);
        self.post_keyed(at, key, ev);
    }

    /// Schedules a pre-keyed event: cross-lane targets go to the
    /// destination lane's mailbox; owned targets go to the inline slot
    /// when provably next, else to the queue.
    ///
    /// Slot invariant: whenever the slot is occupied, its `(time,
    /// key)` is strictly below the queue head's, so taking the slot
    /// first preserves the lane's total order. A later post that beats
    /// the slot swaps in and demotes the old occupant to the queue
    /// (still below the old head, so the invariant survives both
    /// ways).
    pub(crate) fn post_keyed(&mut self, at: Cycle, key: TieKey, ev: Ev) {
        let target = ev.target().index();
        if self.lanes > 1 {
            let lane = lane_of(target, self.lanes, self.total_nodes);
            if lane != self.lane {
                // Every cross-lane emission must clear the lookahead
                // matrix: the published floor contract promises peers
                // that nothing from this lane lands before `floor +
                // D[self][dst]`, and the current event is at or above
                // the floor. A violation here is a matrix bug that
                // must fail loudly in release fuzz runs, not only in
                // debug builds.
                let clear = self.cur_time.as_u64().saturating_add(self.dist_row[lane]);
                assert!(
                    at.as_u64() >= clear,
                    "sanitizer: cross-lane event under the lookahead matrix \
                     (lane {} -> {}, event at {at}, emitted at {}, D={})",
                    self.lane,
                    lane,
                    self.cur_time,
                    self.dist_row[lane]
                );
                self.outboxes[lane].push((at, key, ev));
                return;
            }
        }
        match self.slot {
            None => {
                if self
                    .queue
                    .peek()
                    .is_none_or(|(pt, pk)| (at, key) < (pt, pk))
                {
                    self.slot = Some((at, key, ev));
                } else {
                    self.queue.schedule_keyed(at, key, ev);
                }
            }
            Some((st, sk, _)) => {
                if (at, key) < (st, sk) {
                    let (ot, ok, oev) = self.slot.replace((at, key, ev)).expect("slot occupied");
                    self.queue.schedule_keyed(ot, ok, oev);
                } else {
                    self.queue.schedule_keyed(at, key, ev);
                }
            }
        }
    }

    /// Transmits `payload` from `src` at `at`: the loopback FIFO
    /// delivers locally, a mesh send resolves its receive side at the
    /// destination's lane via [`Ev::NetArrive`] (the only protocol
    /// event that crosses lanes).
    pub(crate) fn send_payload(&mut self, src: NodeId, dst: NodeId, payload: Payload, at: Cycle) {
        let flits = payload.flits();
        match self.net.tx(at, src, dst, flits) {
            TxPhase::Loopback { deliver } => {
                self.post(src, deliver, Ev::Deliver { src, dst, payload });
            }
            TxPhase::Mesh { head_arrives } => {
                self.post(
                    src,
                    head_arrives,
                    Ev::NetArrive {
                        src,
                        dst,
                        flits,
                        sent_at: at,
                        payload,
                    },
                );
            }
        }
    }

    /// Executes every owned event with `time < t_end` in `(time, key)`
    /// order, applying remote writes interleaved by tag. On return,
    /// the inline slot is flushed to the queue so boundary logic
    /// (next-window computation, termination) sees the complete
    /// pending set.
    pub(crate) fn run_window(&mut self, cx: &Wctx) {
        let t_end = self.t_end;
        loop {
            let (now, key, ev) = match self.slot {
                Some((t, _, _)) => {
                    if t >= t_end {
                        break;
                    }
                    let (t, k, ev) = self.slot.take().expect("slot occupied");
                    // Safe: the slot is strictly below the queue head.
                    self.queue.advance_to(t);
                    (t, k, ev)
                }
                None => {
                    let Some((pt, pk)) = self.queue.peek() else {
                        break;
                    };
                    if pt >= t_end {
                        break;
                    }
                    let (t, ev) = self.queue.pop().expect("peeked event vanished");
                    (t, pk, ev)
                }
            };
            if self.rw_gate <= (now, key) {
                self.apply_rwrites_below(now, key);
            }
            self.cur_time = now;
            self.cur_key = key;
            self.executed += 1;
            assert!(
                self.executed < self.max_events,
                "event limit exceeded: probable livelock at {now}"
            );
            self.handle(cx, now, ev);
        }
        if let Some((t, k, ev)) = self.slot.take() {
            self.queue.schedule_keyed(t, k, ev);
        }
    }

    /// The earliest pending event time across the inline slot and the
    /// queue (the slot, when occupied, is strictly below the queue
    /// head). Boundary logic must use this, not the queue alone: a
    /// drained cross-lane event may be parked in the slot.
    pub(crate) fn next_time(&mut self) -> Option<Cycle> {
        match self.slot {
            Some((t, _, _)) => Some(t),
            None => self.queue.peek_time(),
        }
    }

    /// Reads the memory shadow (this lane's replica).
    #[inline]
    pub(crate) fn mem_load(&self, addr: Addr) -> u64 {
        self.mem.get(addr).copied().unwrap_or(0)
    }

    /// Writes the memory shadow, logging the store under the current
    /// event's tag in sharded mode so peer replicas can replay it in
    /// serial order.
    #[inline]
    pub(crate) fn mem_store(&mut self, addr: Addr, value: u64) {
        *self.mem.entry(addr) = value;
        if self.record_writes {
            self.wlog.push((self.cur_time, self.cur_key, addr, value));
        }
    }

    /// Applies every pending remote write tagged strictly below
    /// `(t, key)` to this lane's replica and advances the gate.
    pub(crate) fn apply_rwrites_below(&mut self, t: Cycle, key: TieKey) {
        while self.rw_pos < self.rwrites.len() {
            let (wt, wk, addr, v) = self.rwrites[self.rw_pos];
            if (wt, wk) >= (t, key) {
                break;
            }
            *self.mem.entry(addr) = v;
            self.rw_pos += 1;
        }
        self.rw_gate = match self.rwrites.get(self.rw_pos) {
            Some(&(wt, wk, _, _)) => (wt, wk),
            None => {
                self.rwrites.clear();
                self.rw_pos = 0;
                (Cycle(u64::MAX), u64::MAX)
            }
        };
    }

    /// Merges a batch of remote writes (each batch is tag-sorted
    /// because its producer executed in tag order) into the pending
    /// set and refreshes the gate.
    pub(crate) fn take_rwrites(&mut self, batch: &[WriteRec]) {
        if batch.is_empty() {
            return;
        }
        self.rwrites.drain(..self.rw_pos);
        self.rw_pos = 0;
        self.rwrites.extend_from_slice(batch);
        self.rwrites.sort_unstable_by_key(|&(t, k, _, _)| (t, k));
        self.rw_gate = self
            .rwrites
            .first()
            .map_or((Cycle(u64::MAX), u64::MAX), |&(t, k, _, _)| (t, k));
    }
}
