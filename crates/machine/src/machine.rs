//! The full machine: nodes, network, trap model, barrier runtime and
//! the event loop.

use std::collections::HashMap;

use limitless_cache::{Access, CacheSystem, InstrFootprint};
use limitless_core::{BlockMsg, DirEngine, DirEvent, HandlerKind, ProtoMsg, SendTiming};
use limitless_net::{MeshTopology, Network};
use limitless_sim::{Addr, BlockAddr, Cycle, EventQueue, NodeId};
use limitless_stats::WorkerSetTracker;

use crate::config::MachineConfig;
use crate::program::{Op, Program, Rmw};
use crate::registry::CoherenceRegistry;
use crate::stats::{MachineStats, RunReport};

/// Retain at most this many trap ledgers for Table 2 analysis.
const MAX_RETAINED_BILLS: usize = 50_000;
/// Hard ceiling on simulation events — a drained queue that never
/// empties indicates livelock, which is a bug this backstop surfaces.
const MAX_EVENTS: u64 = 4_000_000_000;

#[derive(Debug)]
enum Ev {
    /// The node's processor is ready for its next operation.
    Resume(NodeId),
    /// A protocol message arrives at `dst`.
    Deliver {
        src: NodeId,
        dst: NodeId,
        bm: BlockMsg,
    },
    /// Re-issue a BUSY-bounced request.
    Retry(NodeId),
    /// Release every node waiting at the barrier (generation tag
    /// guards against stale releases).
    BarrierRelease(u64),
    /// Hand a FIFO lock to `holder`.
    LockGrant(u32, NodeId),
}

#[derive(Debug)]
struct Pending {
    addr: Addr,
    is_write: bool,
    wvalue: u64,
    rmw: Option<Rmw>,
    retries: u32,
    /// The transaction was invalidated while its fill was in flight
    /// (window of vulnerability): complete the access when the data
    /// arrives, but do not install the line.
    squashed: bool,
}

/// Cycles for an uncontended lock acquire or a lock hand-over (a
/// round trip to the lock object's home, serviced by the protocol
/// extension software's lock handler).
const LOCK_LATENCY: u64 = 40;

#[derive(Debug, Default)]
struct LockState {
    holder: Option<NodeId>,
    waiters: std::collections::VecDeque<NodeId>,
}

struct NodeCtx {
    cache: CacheSystem,
    engine: DirEngine,
    program: Box<dyn Program>,
    footprint: Option<InstrFootprint>,
    pending: Option<Pending>,
    /// The home processor is occupied by protocol handlers until this
    /// cycle.
    trap_busy_until: Cycle,
    /// Watchdog: asynchronous events are shut off until this cycle.
    handlers_off_until: Cycle,
    /// Handler cycles accumulated since user code last made progress.
    trap_accum: u64,
    done: bool,
    last_value: Option<u64>,
}

impl std::fmt::Debug for NodeCtx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NodeCtx")
            .field("done", &self.done)
            .field("pending", &self.pending)
            .finish()
    }
}

/// The simulated multiprocessor.
///
/// Build one from a [`MachineConfig`], attach a program per node with
/// [`Machine::load`], then [`Machine::run`] it to completion.
///
/// # Examples
///
/// ```
/// use limitless_machine::{Machine, MachineConfig, Op, ScriptProgram};
/// use limitless_sim::Addr;
///
/// let cfg = MachineConfig::builder().nodes(2).build();
/// let mut m = Machine::new(cfg);
/// m.load(vec![
///     Box::new(ScriptProgram::new(vec![Op::Write(Addr(0x100), 7)])),
///     Box::new(ScriptProgram::new(vec![Op::Read(Addr(0x100))])),
/// ]);
/// let report = m.run();
/// assert!(report.cycles.as_u64() > 0);
/// ```
pub struct Machine {
    cfg: MachineConfig,
    net: Network,
    nodes: Vec<NodeCtx>,
    mem: HashMap<Addr, u64>,
    registry: Option<CoherenceRegistry>,
    tracker: Option<WorkerSetTracker>,
    queue: EventQueue<Ev>,
    /// Per-node CMMU-internal loopback channel: the delivery time of
    /// the most recent home↔home message. Local protocol traffic
    /// (the home's own requests/fills and `LocalInv`) does not touch
    /// the mesh; it flows through this dedicated FIFO so that a local
    /// invalidation can never pass a local fill that is still in
    /// flight (window-of-vulnerability closure), and never queues
    /// behind unrelated network traffic.
    loopback_free: Vec<Cycle>,
    barrier_waiting: Vec<NodeId>,
    /// FIFO locks (the §7 lock data type): holder plus waiters in
    /// strict arrival order.
    locks: HashMap<u32, LockState>,
    barrier_generation: u64,
    finished: usize,
    finish_time: Cycle,
    stats: MachineStats,
    loaded: bool,
}

impl std::fmt::Debug for Machine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Machine")
            .field("nodes", &self.nodes.len())
            .field("protocol", &self.cfg.protocol.to_string())
            .field("finished", &self.finished)
            .finish()
    }
}

impl Machine {
    /// Builds an idle machine from `cfg`.
    pub fn new(cfg: MachineConfig) -> Self {
        let topo = MeshTopology::for_nodes(cfg.nodes);
        let net = Network::new(topo, cfg.net);
        let nodes = (0..cfg.nodes)
            .map(|i| NodeCtx {
                cache: CacheSystem::new(cfg.cache),
                engine: DirEngine::new(
                    NodeId::from_index(i),
                    cfg.nodes,
                    cfg.protocol,
                    cfg.handler_impl,
                ),
                program: Box::new(crate::program::ScriptProgram::new(Vec::new())),
                footprint: None,
                pending: None,
                trap_busy_until: Cycle::ZERO,
                handlers_off_until: Cycle::ZERO,
                trap_accum: 0,
                done: true, // idle until a program is loaded
                last_value: None,
            })
            .collect();
        Machine {
            registry: cfg.check_coherence.then(CoherenceRegistry::new),
            tracker: cfg.track_worker_sets.then(WorkerSetTracker::new),
            net,
            nodes,
            mem: HashMap::new(),
            queue: EventQueue::new(),
            loopback_free: vec![Cycle::ZERO; cfg.nodes],
            barrier_waiting: Vec::new(),
            locks: HashMap::new(),
            barrier_generation: 0,
            finished: 0,
            finish_time: Cycle::ZERO,
            stats: MachineStats::default(),
            cfg,
            loaded: false,
        }
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.nodes.len()
    }

    /// The configuration this machine was built with.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// Pre-initializes a shared-memory word (program input data).
    pub fn poke(&mut self, addr: Addr, value: u64) {
        self.mem.insert(addr, value);
    }

    /// Installs a custom protocol extension handler on every node's
    /// directory engine — the paper's §7 enhancement hook (the
    /// flexible coherence interface lets "a user … write an
    /// application-specific protocol"). The factory is called once per
    /// node.
    pub fn set_extension_handler<F>(&mut self, factory: F)
    where
        F: Fn(NodeId) -> Box<dyn limitless_core::ExtensionHandler>,
    {
        for (i, node) in self.nodes.iter_mut().enumerate() {
            node.engine.set_handler(factory(NodeId::from_index(i)));
        }
    }

    /// Reads a shared-memory word after a run (program output data).
    pub fn peek(&self, addr: Addr) -> u64 {
        self.mem.get(&addr).copied().unwrap_or(0)
    }

    /// Loads one program per node.
    ///
    /// # Panics
    ///
    /// Panics if the program count differs from the node count.
    pub fn load(&mut self, programs: Vec<Box<dyn Program>>) {
        assert_eq!(
            programs.len(),
            self.nodes.len(),
            "need exactly one program per node"
        );
        for (i, p) in programs.into_iter().enumerate() {
            let node = NodeId::from_index(i);
            self.nodes[i].footprint = p.instr_footprint(node);
            self.nodes[i].program = p;
            self.nodes[i].done = false;
        }
        self.finished = 0;
        self.loaded = true;
    }

    /// Runs the machine until every program has finished and all
    /// protocol traffic has drained. Returns the measurements.
    ///
    /// # Panics
    ///
    /// Panics if no programs were loaded, if the event limit is
    /// exceeded (livelock backstop), or — with coherence checking
    /// enabled — on a protocol invariant violation.
    pub fn run(&mut self) -> RunReport {
        assert!(self.loaded, "load programs before running");
        for i in 0..self.nodes.len() {
            self.queue.schedule(Cycle::ZERO, Ev::Resume(NodeId::from_index(i)));
        }
        let max_events = std::env::var("LIMITLESS_MAX_EVENTS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(MAX_EVENTS);
        while let Some((now, ev)) = self.queue.pop() {
            assert!(
                self.queue.processed() < max_events,
                "event limit exceeded: probable livelock at {now}"
            );
            match ev {
                Ev::Resume(n) => self.step_program(n, now),
                Ev::Deliver { src, dst, bm } => self.deliver(src, dst, bm, now),
                Ev::Retry(n) => self.retry(n, now),
                Ev::BarrierRelease(generation) => self.release_barrier(generation, now),
                Ev::LockGrant(lock, holder) => self.grant_lock(lock, holder, now),
            }
        }
        assert_eq!(
            self.finished,
            self.nodes.len(),
            "simulation drained with unfinished programs (deadlock?)"
        );
        self.collect_report()
    }

    fn collect_report(&mut self) -> RunReport {
        let mut stats = std::mem::take(&mut self.stats);
        for n in &self.nodes {
            stats.absorb_node(n.engine.stats(), n.cache.stats());
        }
        stats.net = self.net.stats();
        stats.worker_sets = self.tracker.take().map(|t| t.finish());
        RunReport {
            cycles: self.finish_time,
            events: self.queue.processed(),
            stats,
        }
    }

    // ------------------------------------------------------ programs

    fn step_program(&mut self, n: NodeId, now: Cycle) {
        let i = n.index();
        if self.nodes[i].done {
            return;
        }
        // Protocol handlers steal processor cycles: user code resumes
        // only when the handler (and any watchdog grace) completes.
        let busy = self.nodes[i].trap_busy_until;
        if busy > now {
            self.queue.schedule(busy, Ev::Resume(n));
            return;
        }
        self.nodes[i].trap_accum = 0; // user code made progress

        let last = self.nodes[i].last_value.take();
        let op = self.nodes[i].program.next(n, last);
        match op {
            Op::Compute(c) => {
                let instr_blocks = (c / 8).max(1);
                let penalty = self.ifetch(i, instr_blocks, now);
                self.queue.schedule(now + Cycle(c) + Cycle(penalty), Ev::Resume(n));
            }
            Op::Barrier => {
                self.barrier_waiting.push(n);
                self.check_barrier(now);
            }
            Op::LockAcquire(lock) => {
                let st = self.locks.entry(lock).or_default();
                if st.holder.is_none() && st.waiters.is_empty() {
                    // Uncontended: one round trip to the lock object.
                    st.holder = Some(n);
                    self.queue.schedule(now + Cycle(LOCK_LATENCY), Ev::Resume(n));
                } else {
                    st.waiters.push_back(n); // strict FIFO
                }
            }
            Op::LockRelease(lock) => {
                let st = self
                    .locks
                    .get_mut(&lock)
                    .unwrap_or_else(|| panic!("release of unknown lock {lock}"));
                assert_eq!(
                    st.holder,
                    Some(n),
                    "node {n} released lock {lock} it does not hold"
                );
                st.holder = None;
                if let Some(next) = st.waiters.pop_front() {
                    // Hand-over latency: the protocol software passes
                    // the lock straight to the oldest waiter.
                    self.queue
                        .schedule(now + Cycle(LOCK_LATENCY), Ev::LockGrant(lock, next));
                }
                self.queue.schedule(now + Cycle(4), Ev::Resume(n));
            }
            Op::Finish => {
                self.nodes[i].done = true;
                self.finished += 1;
                self.finish_time = self.finish_time.max(now);
                // A finishing node may complete the barrier for the
                // rest.
                self.check_barrier(now);
            }
            Op::Read(addr) => {
                let penalty = self.ifetch(i, 1, now);
                let block = addr.block(self.cfg.cache.line_bytes);
                match self.nodes[i].cache.read(block) {
                    Access::Hit => {
                        self.stats.hits += 1;
                        self.finish_access(n, addr, false, None, 0, now + Cycle(self.cfg.proc.hit + penalty));
                    }
                    Access::VictimHit => {
                        self.stats.hits += 1;
                        self.finish_access(
                            n,
                            addr,
                            false,
                            None,
                            0,
                            now + Cycle(self.cfg.proc.hit + self.cfg.proc.victim_hit + penalty),
                        );
                    }
                    Access::UpgradeMiss | Access::Miss { .. } => {
                        self.start_miss(n, addr, false, 0, None, now + Cycle(penalty));
                    }
                }
            }
            Op::Write(addr, v) => self.write_like(n, addr, v, None, now),
            Op::Rmw(addr, rmw) => self.write_like(n, addr, 0, Some(rmw), now),
        }
    }

    fn write_like(&mut self, n: NodeId, addr: Addr, v: u64, rmw: Option<Rmw>, now: Cycle) {
        let i = n.index();
        let penalty = self.ifetch(i, 1, now);
        let block = addr.block(self.cfg.cache.line_bytes);
        match self.nodes[i].cache.write(block) {
            Access::Hit => {
                self.stats.hits += 1;
                self.finish_access(n, addr, true, rmw, v, now + Cycle(self.cfg.proc.hit + penalty));
            }
            Access::VictimHit => {
                self.stats.hits += 1;
                self.finish_access(
                    n,
                    addr,
                    true,
                    rmw,
                    v,
                    now + Cycle(self.cfg.proc.hit + self.cfg.proc.victim_hit + penalty),
                );
            }
            Access::UpgradeMiss | Access::Miss { .. } => {
                self.start_miss(n, addr, true, v, rmw, now + Cycle(penalty));
            }
        }
    }

    /// Completes a memory operation at time `t`: applies its effect to
    /// shadow memory and resumes the program.
    fn finish_access(
        &mut self,
        n: NodeId,
        addr: Addr,
        is_write: bool,
        rmw: Option<Rmw>,
        wvalue: u64,
        t: Cycle,
    ) {
        let i = n.index();
        if is_write {
            self.stats.writes += 1;
            let old = self.mem.get(&addr).copied().unwrap_or(0);
            match rmw {
                Some(r) => {
                    self.mem.insert(addr, r.apply(old));
                    self.nodes[i].last_value = Some(old);
                }
                None => {
                    self.mem.insert(addr, wvalue);
                }
            }
        } else {
            self.stats.reads += 1;
            self.nodes[i].last_value = Some(self.mem.get(&addr).copied().unwrap_or(0));
        }
        if let Some(t) = self.tracker.as_mut() {
            let block = addr.block(self.cfg.cache.line_bytes);
            t.touch(block.0, n.0, is_write);
        }
        self.queue.schedule(t, Ev::Resume(n));
    }

    fn home_of(&self, block: BlockAddr) -> NodeId {
        NodeId::from_index((block.0 % self.nodes.len() as u64) as usize)
    }

    fn start_miss(
        &mut self,
        n: NodeId,
        addr: Addr,
        is_write: bool,
        wvalue: u64,
        rmw: Option<Rmw>,
        now: Cycle,
    ) {
        self.stats.misses += 1;
        let i = n.index();
        let block = addr.block(self.cfg.cache.line_bytes);
        let home = self.home_of(block);

        // The software-only directory's uniprocessor fast path: local
        // blocks never touched by a remote node fill straight from
        // local DRAM, with no protocol involvement at all (§2.3).
        if home == n && self.nodes[i].engine.local_fast_path(block) {
            self.stats.local_fast_fills += 1;
            let wb = if is_write {
                self.registry_fill_exclusive(block, n);
                self.nodes[i].cache.fill_dirty(block)
            } else {
                self.registry_fill_shared(block, n);
                self.nodes[i].cache.fill_shared(block)
            };
            self.handle_displacement(n, wb, now);
            let t = now
                + Cycle(self.cfg.proc.issue + 10 /* local DRAM */ + self.cfg.proc.fill);
            self.finish_access(n, addr, is_write, rmw, wvalue, t);
            return;
        }

        debug_assert!(self.nodes[i].pending.is_none(), "one outstanding miss per node");
        self.nodes[i].pending = Some(Pending {
            addr,
            is_write,
            wvalue,
            rmw,
            retries: 0,
            squashed: false,
        });
        let msg = if is_write {
            ProtoMsg::WriteReq
        } else {
            ProtoMsg::ReadReq
        };
        self.send(n, home, block, msg, now + Cycle(self.cfg.proc.issue));
    }

    fn retry(&mut self, n: NodeId, now: Cycle) {
        let i = n.index();
        let Some(p) = self.nodes[i].pending.as_ref() else {
            return; // satisfied in the meantime
        };
        let block = p.addr.block(self.cfg.cache.line_bytes);
        let msg = if p.is_write {
            ProtoMsg::WriteReq
        } else {
            ProtoMsg::ReadReq
        };
        let home = self.home_of(block);
        self.send(n, home, block, msg, now);
    }

    fn check_barrier(&mut self, now: Cycle) {
        let alive = self.nodes.len() - self.finished;
        if alive > 0 && self.barrier_waiting.len() == alive {
            self.barrier_generation += 1;
            self.stats.barriers += 1;
            self.queue.schedule(
                now + Cycle(self.cfg.barrier_cycles),
                Ev::BarrierRelease(self.barrier_generation),
            );
        }
    }

    fn grant_lock(&mut self, lock: u32, holder: NodeId, now: Cycle) {
        let st = self.locks.get_mut(&lock).expect("granting unknown lock");
        debug_assert!(st.holder.is_none(), "lock {lock} granted while held");
        st.holder = Some(holder);
        self.stats.lock_handoffs += 1;
        self.queue.schedule(now, Ev::Resume(holder));
    }

    fn release_barrier(&mut self, generation: u64, now: Cycle) {
        if generation != self.barrier_generation {
            return;
        }
        for n in std::mem::take(&mut self.barrier_waiting) {
            self.queue.schedule(now, Ev::Resume(n));
        }
    }

    // ------------------------------------------------------- network

    fn send(&mut self, src: NodeId, dst: NodeId, block: BlockAddr, msg: ProtoMsg, at: Cycle) {
        let deliver = if src == dst {
            // CMMU-internal loopback: fixed latency, dedicated FIFO
            // (delivery strictly in send order).
            let ch = &mut self.loopback_free[src.index()];
            let t = (at + Cycle(6)).max(*ch + Cycle(1));
            *ch = t;
            t
        } else {
            self.net.send_sized(at, src, dst, msg.flits())
        };
        self.queue.schedule(
            deliver,
            Ev::Deliver {
                src,
                dst,
                bm: BlockMsg::new(block, msg),
            },
        );
    }

    fn deliver(&mut self, src: NodeId, dst: NodeId, bm: BlockMsg, now: Cycle) {
        let block = bm.block;
        #[cfg(debug_assertions)]
        if std::env::var("LIMITLESS_TRACE_BLOCK").ok().as_deref()
            == Some(&format!("{:#x}", block.0))
        {
            eprintln!("[{now}] {src} -> {dst}: {:?}", bm.msg);
        }
        match bm.msg {
            // ---- home-side protocol events ----
            ProtoMsg::ReadReq => self.home_event(dst, block, DirEvent::Read { from: src }, now),
            ProtoMsg::WriteReq => self.home_event(dst, block, DirEvent::Write { from: src }, now),
            ProtoMsg::InvAck => self.home_event(dst, block, DirEvent::InvAck { from: src }, now),
            ProtoMsg::FlushAck { had_data } => self.home_event(
                dst,
                block,
                DirEvent::OwnerAck {
                    from: src,
                    had_data,
                    downgrade: false,
                },
                now,
            ),
            ProtoMsg::DowngradeAck { had_data } => self.home_event(
                dst,
                block,
                DirEvent::OwnerAck {
                    from: src,
                    had_data,
                    downgrade: true,
                },
                now,
            ),
            ProtoMsg::Wb => self.home_event(dst, block, DirEvent::Writeback { from: src }, now),

            // ---- requester/sharer-side events (CMMU hardware) ----
            ProtoMsg::ReadData => {
                let i = dst.index();
                let squashed = self.nodes[i]
                    .pending
                    .as_ref()
                    .is_some_and(|p| p.squashed && p.addr.block(self.cfg.cache.line_bytes) == block);
                if !squashed {
                    let wb = self.nodes[i].cache.fill_shared(block);
                    self.registry_fill_shared(block, dst);
                    self.handle_displacement(dst, wb, now);
                }
                self.complete_pending(dst, now);
            }
            ProtoMsg::WriteData => {
                let i = dst.index();
                // The line may still sit Shared in our cache if the
                // grant raced nothing at all; normally it is absent.
                let wb = match self.nodes[i].cache.state_of(block) {
                    Some(_) => {
                        self.nodes[i].cache.upgrade(block);
                        None
                    }
                    None => self.nodes[i].cache.fill_dirty(block),
                };
                self.registry_fill_exclusive(block, dst);
                self.handle_displacement(dst, wb, now);
                self.complete_pending(dst, now);
            }
            ProtoMsg::UpgradeAck => {
                let i = dst.index();
                if !self.nodes[i].cache.upgrade(block) {
                    // The shared line was displaced while the upgrade
                    // was in flight (e.g. by instruction thrashing).
                    // In Alewife the transaction store pins the line
                    // for the duration of the transaction, so the
                    // grant is still good: install it as a fresh
                    // exclusive copy. (Memory is current — the line
                    // was only ever shared.) Re-requesting instead
                    // would leave the directory believing we own a
                    // line we never held, wedging later owner fetches.
                    self.stats.upgrade_races += 1;
                    let wb = self.nodes[i].cache.fill_dirty(block);
                    self.handle_displacement(dst, wb, now);
                }
                self.registry_fill_exclusive(block, dst);
                self.complete_pending(dst, now);
            }
            ProtoMsg::Busy => {
                let i = dst.index();
                self.stats.busy_retries += 1;
                if let Some(p) = self.nodes[i].pending.as_mut() {
                    p.retries += 1;
                    let backoff =
                        self.cfg.proc.busy_backoff * u64::from(p.retries.min(8));
                    self.queue.schedule(now + Cycle(backoff), Ev::Retry(dst));
                }
            }
            ProtoMsg::Inv => {
                let i = dst.index();
                self.nodes[i].cache.invalidate(block);
                if let Some(r) = self.registry.as_mut() {
                    r.drop_copy(block, dst);
                }
                // Acknowledge regardless of presence (the copy may have
                // been evicted silently).
                self.send(dst, src, block, ProtoMsg::InvAck, now + Cycle(2));
            }
            ProtoMsg::Flush => {
                let i = dst.index();
                let had = self.nodes[i].cache.invalidate(block).is_some();
                if let Some(r) = self.registry.as_mut() {
                    r.drop_copy(block, dst);
                }
                self.send(dst, src, block, ProtoMsg::FlushAck { had_data: had }, now + Cycle(2));
            }
            ProtoMsg::Downgrade => {
                let i = dst.index();
                let had = self.nodes[i].cache.downgrade(block);
                if had {
                    if let Some(r) = self.registry.as_mut() {
                        r.downgrade(block, dst);
                    }
                }
                self.send(
                    dst,
                    src,
                    block,
                    ProtoMsg::DowngradeAck { had_data: had },
                    now + Cycle(2),
                );
            }
        }
    }

    /// Runs a directory event at its home node and schedules the
    /// resulting messages / trap occupancy.
    fn home_event(&mut self, home: NodeId, block: BlockAddr, ev: DirEvent, now: Cycle) {
        let i = home.index();
        let out = self.nodes[i].engine.handle(block, ev);
        #[cfg(debug_assertions)]
        if std::env::var("LIMITLESS_TRACE_BLOCK").ok().as_deref()
            == Some(&format!("{:#x}", block.0))
        {
            eprintln!(
                "[{now}] home {home}: {ev:?} -> inval_local={} trap={} sends={} stale={}",
                out.invalidate_local,
                out.trap.is_some(),
                out.sends.len(),
                out.stale
            );
        }
        if out.stale {
            return;
        }
        if out.invalidate_local {
            // Flush the home's own cached copy synchronously (the
            // CMMU invalidates its own tags without network traffic;
            // dirty data lands in local memory). If the home has a
            // *fill* for this block still in flight, mark it squashed:
            // the access completes but the line is not installed —
            // Alewife's transaction store closes this window of
            // vulnerability the same way (Kubiatowicz et al., ASPLOS
            // V).
            self.nodes[i].cache.invalidate(block);
            if let Some(r) = self.registry.as_mut() {
                r.drop_copy(block, home);
            }
            if let Some(p) = self.nodes[i].pending.as_mut() {
                // Only reads need squashing: a pending write whose
                // line was invalidated will simply receive `WriteData`
                // (or fail its upgrade and refetch) and install a
                // fresh exclusive copy, which is correct.
                if !p.is_write && p.addr.block(self.cfg.cache.line_bytes) == block {
                    p.squashed = true;
                }
            }
        }

        // Software handler occupancy (and watchdog bookkeeping).
        let mut handler_start = now;
        if let Some(bill) = &out.trap {
            let node = &mut self.nodes[i];
            handler_start = now.max(node.trap_busy_until).max(node.handlers_off_until);
            node.trap_busy_until = handler_start + Cycle(bill.total());
            node.trap_accum += bill.total();
            let watchdog_armed =
                self.cfg.protocol.ack == limitless_core::AckMode::EveryAckTrap;
            if watchdog_armed && node.trap_accum >= self.cfg.watchdog.window {
                node.handlers_off_until =
                    node.trap_busy_until + Cycle(self.cfg.watchdog.grace);
                node.trap_accum = 0;
                self.stats.watchdog_fires += 1;
            }
            match bill.kind {
                HandlerKind::ReadExtend => {
                    self.stats.read_trap_latency.record(bill.total());
                    if self.stats.read_trap_bills.len() < MAX_RETAINED_BILLS {
                        self.stats.read_trap_bills.push(bill.clone());
                    }
                }
                HandlerKind::WriteExtend => {
                    self.stats.write_trap_latency.record(bill.total());
                    if self.stats.write_trap_bills.len() < MAX_RETAINED_BILLS {
                        self.stats.write_trap_bills.push(bill.clone());
                    }
                }
                _ => {}
            }
        }

        for s in out.sends {
            let depart = match s.timing {
                SendTiming::Hw { offset } => now + Cycle(offset),
                SendTiming::Sw { offset } => handler_start + Cycle(offset),
            };
            self.send(home, s.dst, block, s.msg, depart);
        }
    }

    fn complete_pending(&mut self, n: NodeId, now: Cycle) {
        let i = n.index();
        let Some(p) = self.nodes[i].pending.take() else {
            return; // duplicate grant (e.g. after an upgrade race)
        };
        let t = now + Cycle(self.cfg.proc.fill);
        self.finish_access(n, p.addr, p.is_write, p.rmw, p.wvalue, t);
    }

    /// A fill displaced a dirty block out of the victim path: write it
    /// back to its home.
    fn handle_displacement(&mut self, n: NodeId, wb: Option<BlockAddr>, now: Cycle) {
        if let Some(victim) = wb {
            if let Some(r) = self.registry.as_mut() {
                r.drop_copy(victim, n);
            }
            let home = self.home_of(victim);
            self.send(n, home, victim, ProtoMsg::Wb, now);
        }
    }

    fn registry_fill_shared(&mut self, block: BlockAddr, n: NodeId) {
        if let Some(r) = self.registry.as_mut() {
            r.fill_shared(block, n);
        }
    }

    fn registry_fill_exclusive(&mut self, block: BlockAddr, n: NodeId) {
        if let Some(r) = self.registry.as_mut() {
            r.fill_exclusive(block, n);
        }
    }

    /// Streams `blocks` instruction blocks through the cache, returning
    /// the total miss penalty in cycles.
    fn ifetch(&mut self, i: usize, blocks: u64, now: Cycle) -> u64 {
        if self.cfg.perfect_ifetch {
            return 0;
        }
        let Some(mut fp) = self.nodes[i].footprint else {
            return 0;
        };
        let mut penalty = 0;
        for _ in 0..blocks.min(fp.blocks()) {
            let b = fp.next_block();
            let (miss, wb) = self.nodes[i].cache.ifetch(b);
            if miss {
                penalty += self.cfg.proc.ifetch_miss;
            }
            self.handle_displacement(NodeId::from_index(i), wb, now);
        }
        self.nodes[i].footprint = Some(fp);
        penalty
    }
}
