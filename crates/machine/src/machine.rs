//! The simulated multiprocessor: per-node state, shared memory and
//! construction.
//!
//! The behaviour is split across sibling modules:
//!
//! * [`crate::shard`] — the event-lane execution context shared by the
//!   serial and sharded engines: event routing, the `(time, key)`
//!   total order and windowed memory;
//! * [`crate::run_loop`] — the run drivers (serial and conservative
//!   parallel windows), program stepping and the requester-side
//!   protocol (miss issue, fills, retries, network delivery);
//! * [`crate::trap_path`] — the home-side trap model: handler
//!   occupancy, watchdog bookkeeping and Table 1/2 billing;
//! * [`crate::sync`] — the barrier and FIFO-lock runtime (§7 data
//!   types), implemented as home-node message protocols.

use limitless_cache::{CacheSystem, InstrFootprint};
use limitless_core::{BlockMsg, DirEngine};
use limitless_net::{FlitCount, MeshTopology, Network};
use limitless_sim::{Addr, BlockAddr, Cycle, NodeId};
use limitless_stats::WorkerSetTracker;

use crate::config::MachineConfig;
use crate::dense::DenseMap;
use crate::program::{Program, Rmw};
use crate::registry::CoherenceRegistry;
use crate::stats::MachineStats;
use crate::sync::LockState;

/// The structural tie-break key: every event carries
/// `origin_node << 48 | per-origin counter`, where the origin is the
/// node whose handler scheduled it. Keys are unique, allocated in a
/// deterministic per-node order, and — critically — independent of how
/// nodes are partitioned into event lanes, so the `(time, key)` total
/// order is the same for the serial and sharded engines.
pub(crate) type TieKey = u64;

/// Synchronization-runtime messages (§7 data types), serviced by the
/// home node of the lock / the barrier master like any other protocol
/// message. The sender travels as the envelope's `src`.
#[derive(Clone, Copy, Debug)]
pub(crate) enum SyncMsg {
    /// `src` reached the all-node barrier.
    BarrierArrive,
    /// The barrier master releases `dst` from the barrier.
    BarrierGo,
    /// `src`'s program finished (the master needs this to release
    /// barriers among the still-running nodes).
    NodeDone,
    /// `src` requests the FIFO lock.
    LockReq(u32),
    /// The lock's home grants the FIFO lock to `dst`.
    LockGrant(u32),
    /// `src` releases the FIFO lock.
    LockRel(u32),
}

/// What a network message carries.
#[derive(Clone, Copy, Debug)]
pub(crate) enum Payload {
    /// A coherence-protocol message about a block.
    Proto(BlockMsg),
    /// A synchronization-runtime message.
    Sync(SyncMsg),
}

impl Payload {
    /// Size on the wire in flits.
    pub(crate) fn flits(&self) -> u32 {
        match self {
            Payload::Proto(bm) => bm.msg.flits().as_u32(),
            // Sync messages are header-only control traffic.
            Payload::Sync(_) => FlitCount::CONTROL.as_u32(),
        }
    }
}

#[derive(Debug)]
pub(crate) enum Ev {
    /// The node's processor is ready for its next operation.
    Resume(NodeId),
    /// A mesh message's head flit reaches `dst`'s receive queue; the
    /// receive side (rx contention, serialization) is resolved there.
    /// This is the only event that crosses lanes through the mailbox
    /// protocol, which is why its time is bounded below by the
    /// cross-node latency floor.
    NetArrive {
        src: NodeId,
        dst: NodeId,
        flits: u32,
        sent_at: Cycle,
        payload: Payload,
    },
    /// A message is fully received at `dst` and acts on it.
    Deliver {
        src: NodeId,
        dst: NodeId,
        payload: Payload,
    },
    /// Re-issue a BUSY-bounced request.
    Retry(NodeId),
}

impl Ev {
    /// The node whose lane must execute this event.
    pub(crate) fn target(&self) -> NodeId {
        match *self {
            Ev::Resume(n) | Ev::Retry(n) => n,
            Ev::NetArrive { dst, .. } | Ev::Deliver { dst, .. } => dst,
        }
    }
}

#[derive(Debug)]
pub(crate) struct Pending {
    pub(crate) addr: Addr,
    pub(crate) is_write: bool,
    pub(crate) wvalue: u64,
    pub(crate) rmw: Option<Rmw>,
    pub(crate) retries: u32,
    /// The transaction was invalidated while its fill was in flight
    /// (window of vulnerability): complete the access when the data
    /// arrives, but do not install the line.
    pub(crate) squashed: bool,
}

pub(crate) struct NodeCtx {
    pub(crate) cache: CacheSystem,
    pub(crate) engine: DirEngine,
    pub(crate) program: Box<dyn Program>,
    pub(crate) footprint: Option<InstrFootprint>,
    pub(crate) pending: Option<Pending>,
    /// The home processor is occupied by protocol handlers until this
    /// cycle.
    pub(crate) trap_busy_until: Cycle,
    /// Watchdog: asynchronous events are shut off until this cycle.
    pub(crate) handlers_off_until: Cycle,
    /// Handler cycles accumulated since user code last made progress.
    pub(crate) trap_accum: u64,
    pub(crate) done: bool,
    pub(crate) last_value: Option<u64>,
    /// Tie-break key counter for events this node's handlers schedule.
    pub(crate) key_counter: u64,
    /// Counters accumulated at this node (its accesses, its trap
    /// billing as a home, its sync servicing). Summed node-by-node
    /// into the run totals, so the totals are partition-independent.
    pub(crate) stats: MachineStats,
    /// `(address, value)` log of completed reads, recorded under
    /// [`limitless_core::CheckLevel::Full`] for the differential
    /// oracle.
    pub(crate) read_log: Option<Vec<(Addr, u64)>>,
    /// FIFO locks homed at this node (`lock % nodes`): holder plus
    /// waiters in strict arrival order.
    pub(crate) locks: DenseMap<u32, LockState>,
    /// Barrier-master state (only node 0 uses it): who has arrived at
    /// the current barrier episode.
    pub(crate) barrier_arrived: Vec<NodeId>,
    /// Barrier-master state: how many nodes have reported `NodeDone`.
    pub(crate) barrier_done_seen: usize,
}

impl NodeCtx {
    /// Allocates the next structural tie-break key for an event this
    /// node schedules.
    pub(crate) fn next_key(&mut self, origin: NodeId) -> TieKey {
        self.key_counter += 1;
        (u64::from(origin.0) << 48) | self.key_counter
    }
}

impl std::fmt::Debug for NodeCtx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NodeCtx")
            .field("done", &self.done)
            .field("pending", &self.pending)
            .finish()
    }
}

/// The simulated multiprocessor.
///
/// Build one from a [`MachineConfig`], attach a program per node with
/// [`Machine::load`], then [`Machine::run`] it to completion.
///
/// # Examples
///
/// ```
/// use limitless_machine::{Machine, MachineConfig, Op, ScriptProgram};
/// use limitless_sim::Addr;
///
/// let cfg = MachineConfig::builder().nodes(2).build();
/// let mut m = Machine::new(cfg);
/// m.load(vec![
///     Box::new(ScriptProgram::new(vec![Op::Write(Addr(0x100), 7)])),
///     Box::new(ScriptProgram::new(vec![Op::Read(Addr(0x100))])),
/// ]);
/// let report = m.run();
/// assert!(report.cycles.as_u64() > 0);
/// ```
pub struct Machine {
    pub(crate) cfg: MachineConfig,
    /// Network template; each run hands per-lane clones to the event
    /// lanes (a lane only touches the endpoint queues of nodes it
    /// owns) and merges their statistics afterwards.
    pub(crate) net: Network,
    pub(crate) nodes: Vec<NodeCtx>,
    /// Shadow of shared memory, interned-dense keyed by word address.
    pub(crate) mem: DenseMap<Addr, u64>,
    pub(crate) registry: Option<CoherenceRegistry>,
    /// Per-node read streams collected back from the nodes after a
    /// run (see [`NodeCtx::read_log`]); `None` unless checking is
    /// [`limitless_core::CheckLevel::Full`].
    pub(crate) read_log: Option<Vec<Vec<(Addr, u64)>>>,
    pub(crate) tracker: Option<WorkerSetTracker>,
    pub(crate) finished: usize,
    pub(crate) finish_time: Cycle,
    pub(crate) loaded: bool,
}

impl std::fmt::Debug for Machine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Machine")
            .field("nodes", &self.nodes.len())
            .field("protocol", &self.cfg.protocol.to_string())
            .field("finished", &self.finished)
            .finish()
    }
}

impl Machine {
    /// Builds an idle machine from `cfg`.
    pub fn new(cfg: MachineConfig) -> Self {
        let topo = MeshTopology::for_nodes(cfg.nodes);
        let net = Network::new(topo, cfg.net);
        let nodes = (0..cfg.nodes)
            .map(|i| {
                let mut cache = CacheSystem::new(cfg.cache);
                // The registry mirrors every cached copy exactly; it
                // needs to observe the silent drops of clean lines.
                cache.set_eviction_mirror(cfg.check.enabled());
                let mut engine = DirEngine::new(
                    NodeId::from_index(i),
                    cfg.nodes,
                    cfg.protocol,
                    cfg.handler_impl,
                );
                engine.set_check_level(cfg.check);
                NodeCtx {
                    cache,
                    engine,
                    program: Box::new(crate::program::ScriptProgram::new(Vec::new())),
                    footprint: None,
                    pending: None,
                    trap_busy_until: Cycle::ZERO,
                    handlers_off_until: Cycle::ZERO,
                    trap_accum: 0,
                    done: true, // idle until a program is loaded
                    last_value: None,
                    key_counter: 0,
                    stats: MachineStats::default(),
                    read_log: cfg.check.is_full().then(Vec::new),
                    locks: DenseMap::default(),
                    barrier_arrived: Vec::new(),
                    barrier_done_seen: 0,
                }
            })
            .collect();
        Machine {
            registry: cfg.check.enabled().then(CoherenceRegistry::new),
            read_log: None,
            tracker: cfg.track_worker_sets.then(WorkerSetTracker::new),
            net,
            nodes,
            mem: DenseMap::default(),
            finished: 0,
            finish_time: Cycle::ZERO,
            cfg,
            loaded: false,
        }
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Reinitializes the machine in place for a fresh run, as if it
    /// had just been built from its configuration — but reusing the
    /// interner, SoA-column, pool and cache allocations instead of
    /// reconstructing them. This is the machine-reuse path for the
    /// sweep service: resetting an idle machine and running a workload
    /// is bit-identical — cycles, events, statistics, memory image,
    /// read streams and interner fingerprints — to building a fresh
    /// machine with the same configuration and running it there
    /// (proven by `tests/prop_reset.rs` at 16/64/256 nodes).
    ///
    /// A custom extension handler installed with
    /// [`Machine::set_extension_handler`] is replaced by the spec's
    /// default handler, exactly as a fresh build would; reinstall it
    /// after the reset if the enhancement should persist.
    pub fn reset(&mut self) {
        for node in &mut self.nodes {
            node.cache.reset();
            node.engine.reset();
            node.program = Box::new(crate::program::ScriptProgram::new(Vec::new()));
            node.footprint = None;
            node.pending = None;
            node.trap_busy_until = Cycle::ZERO;
            node.handlers_off_until = Cycle::ZERO;
            node.trap_accum = 0;
            node.done = true;
            node.last_value = None;
            node.key_counter = 0;
            node.stats = MachineStats::default();
            node.read_log = self.cfg.check.is_full().then(Vec::new);
            node.locks.clear();
            node.barrier_arrived.clear();
            node.barrier_done_seen = 0;
        }
        self.mem.clear();
        self.registry = self.cfg.check.enabled().then(CoherenceRegistry::new);
        self.read_log = None;
        self.tracker = self.cfg.track_worker_sets.then(WorkerSetTracker::new);
        self.finished = 0;
        self.finish_time = Cycle::ZERO;
        self.loaded = false;
    }

    /// The configuration this machine was built with.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// Pre-initializes a shared-memory word (program input data).
    pub fn poke(&mut self, addr: Addr, value: u64) {
        *self.mem.entry(addr) = value;
    }

    /// Installs a custom protocol extension handler on every node's
    /// directory engine — the paper's §7 enhancement hook (the
    /// flexible coherence interface lets "a user … write an
    /// application-specific protocol"). The factory is called once per
    /// node.
    pub fn set_extension_handler<F>(&mut self, factory: F)
    where
        F: Fn(NodeId) -> Box<dyn limitless_core::ExtensionHandler>,
    {
        for (i, node) in self.nodes.iter_mut().enumerate() {
            node.engine.set_handler(factory(NodeId::from_index(i)));
        }
    }

    /// Reads a shared-memory word after a run (program output data).
    pub fn peek(&self, addr: Addr) -> u64 {
        self.mem.get(addr).copied().unwrap_or(0)
    }

    /// The final shared-memory image — every word ever poked or
    /// written, sorted by address. The differential oracle compares
    /// these across protocols (and across engine modes).
    pub fn memory_image(&self) -> Vec<(Addr, u64)> {
        let mut image: Vec<(Addr, u64)> = self.mem.iter().map(|(a, &v)| (a, v)).collect();
        image.sort_unstable_by_key(|&(a, _)| a.0);
        image
    }

    /// Per-node `(address, value)` logs of every completed read, in
    /// program order. Recorded only under
    /// [`limitless_core::CheckLevel::Full`]; `None` otherwise.
    pub fn read_streams(&self) -> Option<&[Vec<(Addr, u64)>]> {
        self.read_log.as_deref()
    }

    /// Per-home fingerprints of the machine-wide block-id assignment,
    /// one per node in node order. Dense block ids are allocated in
    /// first-touch order at each home, so these are a sensitive probe
    /// of event ordering: serial and sharded runs of the same workload
    /// must produce identical vectors.
    pub fn interner_fingerprints(&self) -> Vec<u64> {
        self.nodes
            .iter()
            .map(|n| n.engine.interner_fingerprint())
            .collect()
    }

    /// Loads one program per node.
    ///
    /// # Panics
    ///
    /// Panics if the program count differs from the node count.
    pub fn load(&mut self, programs: Vec<Box<dyn Program>>) {
        assert_eq!(
            programs.len(),
            self.nodes.len(),
            "need exactly one program per node"
        );
        for (i, p) in programs.into_iter().enumerate() {
            let node = NodeId::from_index(i);
            self.nodes[i].footprint = p.instr_footprint(node);
            self.nodes[i].program = p;
            self.nodes[i].done = false;
        }
        self.finished = 0;
        self.loaded = true;
    }

    pub(crate) fn home_of(&self, block: BlockAddr) -> NodeId {
        NodeId::from_index(limitless_sim::fast_mod(block.0, self.nodes.len() as u64) as usize)
    }
}
