//! The simulated multiprocessor: per-node state, shared memory and
//! construction.
//!
//! The behaviour is split across sibling modules, all `impl Machine`
//! blocks over the state defined here:
//!
//! * [`crate::run_loop`] — the event loop, program stepping and the
//!   requester-side protocol (miss issue, fills, retries, network
//!   delivery);
//! * [`crate::trap_path`] — the home-side trap model: handler
//!   occupancy, watchdog bookkeeping and Table 1/2 billing;
//! * [`crate::sync`] — the barrier and FIFO-lock runtime (§7 data
//!   types).

use limitless_cache::{CacheSystem, InstrFootprint};
use limitless_core::{BlockMsg, DirEngine};
use limitless_net::{MeshTopology, Network};
use limitless_sim::{Addr, BlockAddr, Cycle, EventQueue, NodeId};
use limitless_stats::WorkerSetTracker;

use crate::config::MachineConfig;
use crate::dense::DenseMap;
use crate::program::{Program, Rmw};
use crate::registry::CoherenceRegistry;
use crate::stats::{MachineStats, RunReport};
use crate::sync::LockState;

#[derive(Debug)]
pub(crate) enum Ev {
    /// The node's processor is ready for its next operation.
    Resume(NodeId),
    /// A protocol message arrives at `dst`.
    Deliver {
        src: NodeId,
        dst: NodeId,
        bm: BlockMsg,
    },
    /// Re-issue a BUSY-bounced request.
    Retry(NodeId),
    /// Release every node waiting at the barrier (generation tag
    /// guards against stale releases).
    BarrierRelease(u64),
    /// Hand a FIFO lock to `holder`.
    LockGrant(u32, NodeId),
}

#[derive(Debug)]
pub(crate) struct Pending {
    pub(crate) addr: Addr,
    pub(crate) is_write: bool,
    pub(crate) wvalue: u64,
    pub(crate) rmw: Option<Rmw>,
    pub(crate) retries: u32,
    /// The transaction was invalidated while its fill was in flight
    /// (window of vulnerability): complete the access when the data
    /// arrives, but do not install the line.
    pub(crate) squashed: bool,
}

pub(crate) struct NodeCtx {
    pub(crate) cache: CacheSystem,
    pub(crate) engine: DirEngine,
    pub(crate) program: Box<dyn Program>,
    pub(crate) footprint: Option<InstrFootprint>,
    pub(crate) pending: Option<Pending>,
    /// The home processor is occupied by protocol handlers until this
    /// cycle.
    pub(crate) trap_busy_until: Cycle,
    /// Watchdog: asynchronous events are shut off until this cycle.
    pub(crate) handlers_off_until: Cycle,
    /// Handler cycles accumulated since user code last made progress.
    pub(crate) trap_accum: u64,
    pub(crate) done: bool,
    pub(crate) last_value: Option<u64>,
}

impl std::fmt::Debug for NodeCtx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NodeCtx")
            .field("done", &self.done)
            .field("pending", &self.pending)
            .finish()
    }
}

/// The simulated multiprocessor.
///
/// Build one from a [`MachineConfig`], attach a program per node with
/// [`Machine::load`], then [`Machine::run`] it to completion.
///
/// # Examples
///
/// ```
/// use limitless_machine::{Machine, MachineConfig, Op, ScriptProgram};
/// use limitless_sim::Addr;
///
/// let cfg = MachineConfig::builder().nodes(2).build();
/// let mut m = Machine::new(cfg);
/// m.load(vec![
///     Box::new(ScriptProgram::new(vec![Op::Write(Addr(0x100), 7)])),
///     Box::new(ScriptProgram::new(vec![Op::Read(Addr(0x100))])),
/// ]);
/// let report = m.run();
/// assert!(report.cycles.as_u64() > 0);
/// ```
pub struct Machine {
    pub(crate) cfg: MachineConfig,
    pub(crate) net: Network,
    pub(crate) nodes: Vec<NodeCtx>,
    /// Shadow of shared memory, interned-dense keyed by word address.
    pub(crate) mem: DenseMap<Addr, u64>,
    pub(crate) registry: Option<CoherenceRegistry>,
    /// Per-node `(address, value)` log of completed reads, recorded
    /// under [`limitless_core::CheckLevel::Full`] for the differential
    /// oracle; `None` otherwise.
    pub(crate) read_log: Option<Vec<Vec<(Addr, u64)>>>,
    pub(crate) tracker: Option<WorkerSetTracker>,
    pub(crate) queue: EventQueue<Ev>,
    /// The inline dispatch slot: an event that is provably the global
    /// next event skips the schedule→pop round trip and waits here for
    /// the run loop instead. See [`Machine::post`].
    pub(crate) pending_inline: Option<(Cycle, Ev)>,
    pub(crate) barrier_waiting: Vec<NodeId>,
    /// FIFO locks (the §7 lock data type): holder plus waiters in
    /// strict arrival order, interned-dense keyed by lock id.
    pub(crate) locks: DenseMap<u32, LockState>,
    pub(crate) barrier_generation: u64,
    pub(crate) finished: usize,
    pub(crate) finish_time: Cycle,
    pub(crate) stats: MachineStats,
    pub(crate) loaded: bool,
}

impl std::fmt::Debug for Machine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Machine")
            .field("nodes", &self.nodes.len())
            .field("protocol", &self.cfg.protocol.to_string())
            .field("finished", &self.finished)
            .finish()
    }
}

impl Machine {
    /// Builds an idle machine from `cfg`.
    pub fn new(cfg: MachineConfig) -> Self {
        let topo = MeshTopology::for_nodes(cfg.nodes);
        let net = Network::new(topo, cfg.net);
        let nodes = (0..cfg.nodes)
            .map(|i| {
                let mut cache = CacheSystem::new(cfg.cache);
                // The registry mirrors every cached copy exactly; it
                // needs to observe the silent drops of clean lines.
                cache.set_eviction_mirror(cfg.check.enabled());
                let mut engine = DirEngine::new(
                    NodeId::from_index(i),
                    cfg.nodes,
                    cfg.protocol,
                    cfg.handler_impl,
                );
                engine.set_check_level(cfg.check);
                NodeCtx {
                    cache,
                    engine,
                    program: Box::new(crate::program::ScriptProgram::new(Vec::new())),
                    footprint: None,
                    pending: None,
                    trap_busy_until: Cycle::ZERO,
                    handlers_off_until: Cycle::ZERO,
                    trap_accum: 0,
                    done: true, // idle until a program is loaded
                    last_value: None,
                }
            })
            .collect();
        Machine {
            registry: cfg.check.enabled().then(CoherenceRegistry::new),
            read_log: cfg.check.is_full().then(|| vec![Vec::new(); cfg.nodes]),
            tracker: cfg.track_worker_sets.then(WorkerSetTracker::new),
            net,
            nodes,
            mem: DenseMap::default(),
            queue: EventQueue::new(),
            pending_inline: None,
            barrier_waiting: Vec::new(),
            locks: DenseMap::default(),
            barrier_generation: 0,
            finished: 0,
            finish_time: Cycle::ZERO,
            stats: MachineStats::default(),
            cfg,
            loaded: false,
        }
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.nodes.len()
    }

    /// The configuration this machine was built with.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// Pre-initializes a shared-memory word (program input data).
    pub fn poke(&mut self, addr: Addr, value: u64) {
        *self.mem.entry(addr) = value;
    }

    /// Installs a custom protocol extension handler on every node's
    /// directory engine — the paper's §7 enhancement hook (the
    /// flexible coherence interface lets "a user … write an
    /// application-specific protocol"). The factory is called once per
    /// node.
    pub fn set_extension_handler<F>(&mut self, factory: F)
    where
        F: Fn(NodeId) -> Box<dyn limitless_core::ExtensionHandler>,
    {
        for (i, node) in self.nodes.iter_mut().enumerate() {
            node.engine.set_handler(factory(NodeId::from_index(i)));
        }
    }

    /// Reads a shared-memory word after a run (program output data).
    pub fn peek(&self, addr: Addr) -> u64 {
        self.mem.get(addr).copied().unwrap_or(0)
    }

    /// The final shared-memory image — every word ever poked or
    /// written, sorted by address. The differential oracle compares
    /// these across protocols.
    pub fn memory_image(&self) -> Vec<(Addr, u64)> {
        let mut image: Vec<(Addr, u64)> = self.mem.iter().map(|(a, &v)| (a, v)).collect();
        image.sort_unstable_by_key(|&(a, _)| a.0);
        image
    }

    /// Per-node `(address, value)` logs of every completed read, in
    /// program order. Recorded only under
    /// [`limitless_core::CheckLevel::Full`]; `None` otherwise.
    pub fn read_streams(&self) -> Option<&[Vec<(Addr, u64)>]> {
        self.read_log.as_deref()
    }

    /// Loads one program per node.
    ///
    /// # Panics
    ///
    /// Panics if the program count differs from the node count.
    pub fn load(&mut self, programs: Vec<Box<dyn Program>>) {
        assert_eq!(
            programs.len(),
            self.nodes.len(),
            "need exactly one program per node"
        );
        for (i, p) in programs.into_iter().enumerate() {
            let node = NodeId::from_index(i);
            self.nodes[i].footprint = p.instr_footprint(node);
            self.nodes[i].program = p;
            self.nodes[i].done = false;
        }
        self.finished = 0;
        self.loaded = true;
    }

    pub(crate) fn home_of(&self, block: BlockAddr) -> NodeId {
        NodeId::from_index((block.0 % self.nodes.len() as u64) as usize)
    }

    pub(crate) fn collect_report(&mut self, wall_seconds: f64) -> RunReport {
        let mut stats = std::mem::take(&mut self.stats);
        for n in &self.nodes {
            stats.absorb_node(n.engine.stats(), n.cache.stats());
        }
        stats.net = self.net.stats();
        stats.worker_sets = self.tracker.take().map(|t| t.finish());
        RunReport {
            cycles: self.finish_time,
            events: self.queue.processed(),
            wall_seconds,
            stats,
        }
    }
}
