//! Lock-free lane synchronization fabric for the sharded engine.
//!
//! Each lane owns a cache-line-padded [`LaneBoard`] of atomics and
//! publishes a monotone *floor* — a lower bound on the time of every
//! event it will ever execute or emit from now on. Peers bound their
//! window ends by `min over d != b of floor[d] + D[d][b]`, where
//! `D` is the per-lane-pair lookahead matrix (minimum mesh latency
//! from any node owned by lane `d` to any node owned by lane `b`).
//! Because each lane only waits for lanes that can actually reach it
//! soon, a lane whose peers are far away advances through many
//! consecutive windows between synchronizations — the window batching
//! this PR is about.
//!
//! # Skip-jump: the quiescent-minimum snapshot
//!
//! When a lane is blocked (its next event lies at or beyond its window
//! end), ratcheting floors alone would cross an idle stretch in
//! `gap / min(D)` rounds. Instead the blocked lane attempts a *stable
//! snapshot* in the style of distributed-GVT algorithms (Samadi /
//! Mattern message counting): it reads every board twice and accepts
//! only if (a) every `seq` is even and unchanged between passes, and
//! (b) the global sent-counter sum equals the global covered-counter
//! sum. `sent` is incremented *before* an event is pushed to a remote
//! mailbox and `recv` only once a publish's `next` covers the drained
//! event, so equality proves no event was in flight at any instant
//! between the two passes. At such an instant every pending event sits
//! in some lane's queue at or after that lane's published `next`, and
//! event causality (all posts are at or after the generating event)
//! extends the bound to all future events — so `G = min next` is a
//! sound global floor and the lane may jump its window straight to the
//! earliest pending event, crossing any idle stretch in one round.
//!
//! A failed snapshot is harmless: the lane falls back to the pure
//! floor ratchet, which always progresses by at least `min D >= 1`
//! per round, so there is no deadlock.
//!
//! This module is exported so `limitless-bench` can measure the
//! publish / window-end / snapshot cycle in isolation (the
//! `lane_sync_round_trip` micro benchmark).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Per-lane published state, padded to two cache lines so neighbouring
/// lanes' publishes never false-share.
#[repr(align(128))]
#[derive(Debug)]
pub struct LaneBoard {
    /// Seqlock counter: odd while a publish is in progress.
    seq: AtomicU64,
    /// Safe-time watermark: no event this lane executes or emits from
    /// now on is earlier than `floor` (emissions additionally clear
    /// `floor + D[lane][dst]`). Monotone.
    floor: AtomicU64,
    /// The lane's earliest pending event at last publish (`u64::MAX`
    /// when its queue was empty).
    next: AtomicU64,
    /// Cross-lane events this lane has pushed to peer mailboxes;
    /// incremented *before* the push lands.
    sent: AtomicU64,
    /// Cross-lane events this lane has drained *and* covered by a
    /// published `next`; only ever bumped inside a publish.
    recv: AtomicU64,
    /// Events executed so far (feeds the global event-budget check).
    executed: AtomicU64,
}

impl LaneBoard {
    fn new() -> Self {
        LaneBoard {
            seq: AtomicU64::new(0),
            floor: AtomicU64::new(0),
            next: AtomicU64::new(0),
            sent: AtomicU64::new(0),
            recv: AtomicU64::new(0),
            executed: AtomicU64::new(0),
        }
    }
}

/// A stable quiescent snapshot: proof that at some instant no event
/// was in flight between lanes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Quiescence {
    /// Global minimum over published next-event times; `u64::MAX`
    /// means the whole machine is drained and every lane may stop.
    pub global_min: u64,
    /// Sum of per-lane executed-event counters at the snapshot.
    pub executed: u64,
}

/// The shared synchronization fabric: one board per lane plus the
/// flattened lookahead matrix `dist[d * lanes + b] = D[d][b]`.
#[derive(Debug)]
pub struct LaneSync {
    boards: Box<[LaneBoard]>,
    dist: Box<[u64]>,
    lanes: usize,
    poisoned: AtomicBool,
}

impl LaneSync {
    /// Builds the fabric for `lanes` lanes from a flattened
    /// row-major lookahead matrix (`dist.len() == lanes * lanes`,
    /// every off-diagonal entry at least 1).
    ///
    /// # Panics
    ///
    /// Panics if the matrix shape is wrong or an off-diagonal entry
    /// is zero (zero lookahead would deadlock the floor ratchet).
    pub fn new(lanes: usize, dist: Vec<u64>) -> Self {
        assert_eq!(dist.len(), lanes * lanes, "lookahead matrix shape");
        for a in 0..lanes {
            for b in 0..lanes {
                assert!(
                    a == b || dist[a * lanes + b] >= 1,
                    "zero cross-lane lookahead D[{a}][{b}]"
                );
            }
        }
        LaneSync {
            boards: (0..lanes).map(|_| LaneBoard::new()).collect(),
            dist: dist.into_boxed_slice(),
            lanes,
            poisoned: AtomicBool::new(false),
        }
    }

    /// Number of lanes.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Lookahead from lane `d` to lane `b`.
    pub fn dist(&self, d: usize, b: usize) -> u64 {
        self.dist[d * self.lanes + b]
    }

    /// Publishes a lane's state. `covered` is the number of drained
    /// cross-lane events this publish's `next` accounts for; the
    /// seqlock makes the `(next, recv)` pair atomic for snapshot
    /// readers. `floor` must be monotone per lane.
    pub fn publish(&self, lane: usize, floor: u64, next: u64, covered: u64, executed: u64) {
        let b = &self.boards[lane];
        let s = b.seq.load(Ordering::Relaxed);
        b.seq.store(s.wrapping_add(1), Ordering::SeqCst);
        b.floor.store(floor, Ordering::Release);
        b.next.store(next, Ordering::Release);
        b.executed.store(executed, Ordering::Relaxed);
        if covered > 0 {
            b.recv.fetch_add(covered, Ordering::SeqCst);
        }
        b.seq.store(s.wrapping_add(2), Ordering::SeqCst);
    }

    /// Counts `n` cross-lane events about to be pushed by `lane`.
    /// Must be called *before* the events become visible to the
    /// destination, so the snapshot's sent-sum never undercounts.
    pub fn note_sent(&self, lane: usize, n: u64) {
        if n > 0 {
            self.boards[lane].sent.fetch_add(n, Ordering::SeqCst);
        }
    }

    /// A lane's current published floor.
    pub fn floor(&self, lane: usize) -> u64 {
        self.boards[lane].floor.load(Ordering::Acquire)
    }

    /// The window end for `lane`: the earliest time any peer could
    /// still inject an event into it, `min over d != lane of
    /// floor[d] + D[d][lane]`. `u64::MAX` for a single lane.
    pub fn window_end(&self, lane: usize) -> u64 {
        let mut end = u64::MAX;
        for d in 0..self.lanes {
            if d != lane {
                end = end.min(self.floor(d).saturating_add(self.dist(d, lane)));
            }
        }
        end
    }

    /// The window end for `lane` given a proven global event floor
    /// `g`: like [`window_end`](Self::window_end) but every peer floor
    /// is raised to at least `g` first. Used to jump idle stretches
    /// after a successful snapshot.
    pub fn jump_end(&self, lane: usize, g: u64) -> u64 {
        let mut end = u64::MAX;
        for d in 0..self.lanes {
            if d != lane {
                let f = self.floor(d).max(g);
                end = end.min(f.saturating_add(self.dist(d, lane)));
            }
        }
        end
    }

    /// Attempts a stable quiescent snapshot (see module docs).
    ///
    /// `scratch` is caller-owned storage (reserve `lanes` entries once
    /// to keep the steady state allocation-free). Returns `None` when
    /// the fabric was caught mid-change; retrying later is always
    /// sound.
    pub fn try_quiescent_min(&self, scratch: &mut Vec<(u64, u64)>) -> Option<Quiescence> {
        scratch.clear();
        let (mut sent, mut recv, mut g, mut executed) = (0u64, 0u64, u64::MAX, 0u64);
        for b in self.boards.iter() {
            let s1 = b.seq.load(Ordering::SeqCst);
            if s1 % 2 != 0 {
                return None;
            }
            let next = b.next.load(Ordering::SeqCst);
            let se = b.sent.load(Ordering::SeqCst);
            let rc = b.recv.load(Ordering::SeqCst);
            executed = executed.wrapping_add(b.executed.load(Ordering::Relaxed));
            scratch.push((s1, se));
            sent += se;
            recv += rc;
            g = g.min(next);
        }
        // Second pass: the snapshot is only valid if no lane published
        // or sent in between, so all the values above coexisted.
        for (b, &(s1, se1)) in self.boards.iter().zip(scratch.iter()) {
            if b.seq.load(Ordering::SeqCst) != s1 || b.sent.load(Ordering::SeqCst) != se1 {
                return None;
            }
        }
        (sent == recv).then_some(Quiescence {
            global_min: g,
            executed,
        })
    }

    /// Marks the run as failed (a lane panicked); all lanes observe
    /// this and unwind instead of spinning forever.
    pub fn poison(&self) {
        self.poisoned.store(true, Ordering::SeqCst);
    }

    /// Whether some lane has panicked.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned.load(Ordering::SeqCst)
    }
}

/// Pins the calling thread to `core` (Linux x86-64 only; a no-op
/// returning `false` elsewhere). Uses a raw `sched_setaffinity`
/// syscall so no FFI crate is needed.
#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
pub fn pin_current_thread(core: usize) -> bool {
    let mut mask = [0u64; 16]; // 1024-bit cpu_set_t
    if core >= mask.len() * 64 {
        return false;
    }
    mask[core / 64] |= 1u64 << (core % 64);
    let ret: i64;
    // sched_setaffinity(pid = 0 (self), len, mask)
    unsafe {
        std::arch::asm!(
            "syscall",
            inlateout("rax") 203i64 => ret,
            in("rdi") 0i64,
            in("rsi") std::mem::size_of_val(&mask),
            in("rdx") mask.as_ptr(),
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
    }
    ret == 0
}

/// Pins the calling thread to `core` (no-op off Linux x86-64).
#[cfg(not(all(target_os = "linux", target_arch = "x86_64")))]
pub fn pin_current_thread(_core: usize) -> bool {
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_end_uses_matrix_rows_into_lane() {
        // D[d][b] row-major for 3 lanes; floors start at 0.
        let d = vec![0, 5, 9, 7, 0, 4, 11, 6, 0];
        let sync = LaneSync::new(3, d);
        // Into lane 0: min(D[1][0], D[2][0]) = min(7, 11).
        assert_eq!(sync.window_end(0), 7);
        // Into lane 1: min(D[0][1], D[2][1]) = min(5, 6).
        assert_eq!(sync.window_end(1), 5);
        // Into lane 2: min(D[0][2], D[1][2]) = min(9, 4).
        assert_eq!(sync.window_end(2), 4);
        sync.publish(1, 100, u64::MAX, 0, 0);
        // Lane 1's floor moved to 100; lane 0's still-zero floor now
        // dominates lane 2's bound via D[0][2] = 9.
        assert_eq!(sync.window_end(0), 11);
        assert_eq!(sync.window_end(2), 9);
    }

    #[test]
    fn snapshot_accepts_quiescent_fabric_and_rejects_in_flight() {
        let sync = LaneSync::new(2, vec![0, 3, 3, 0]);
        let mut scratch = Vec::with_capacity(2);
        sync.publish(0, 10, 40, 0, 5);
        sync.publish(1, 12, 55, 0, 6);
        let q = sync.try_quiescent_min(&mut scratch).expect("stable");
        assert_eq!(q.global_min, 40);
        assert_eq!(q.executed, 11);
        // An event counted as sent but not yet covered blocks the
        // snapshot...
        sync.note_sent(0, 1);
        assert!(sync.try_quiescent_min(&mut scratch).is_none());
        // ...until the destination covers it in a publish.
        sync.publish(1, 12, 30, 1, 6);
        let q = sync.try_quiescent_min(&mut scratch).expect("covered");
        assert_eq!(q.global_min, 30);
    }

    #[test]
    fn jump_end_raises_floors_to_global_min() {
        let sync = LaneSync::new(2, vec![0, 3, 4, 0]);
        // Lane 1 idles at floor 2; a proven global min of 90 lets
        // lane 0 jump to 90 + D[1][0] instead of 2 + D[1][0].
        sync.publish(1, 2, u64::MAX, 0, 0);
        assert_eq!(sync.window_end(0), 6);
        assert_eq!(sync.jump_end(0, 90), 94);
    }

    #[test]
    fn drained_machine_reports_global_max() {
        let sync = LaneSync::new(2, vec![0, 1, 1, 0]);
        let mut scratch = Vec::new();
        sync.publish(0, u64::MAX, u64::MAX, 0, 1);
        sync.publish(1, u64::MAX, u64::MAX, 0, 1);
        let q = sync.try_quiescent_min(&mut scratch).expect("drained");
        assert_eq!(q.global_min, u64::MAX);
    }

    #[test]
    #[should_panic(expected = "zero cross-lane lookahead")]
    fn zero_lookahead_rejected() {
        LaneSync::new(2, vec![0, 1, 0, 0]);
    }

    #[test]
    fn pinning_is_safe_to_call() {
        // Smoke: must not crash regardless of platform; on Linux
        // x86-64 pinning to core 0 of the current process should
        // succeed under any affinity mask that includes core 0.
        let _ = pin_current_thread(0);
        assert!(!pin_current_thread(usize::MAX));
    }
}
