//! Per-run measurement: what one simulation reports.

use limitless_cache::CacheStats;
use limitless_core::{EngineStats, TrapBill};
use limitless_net::NetStats;
use limitless_sim::Cycle;
use limitless_stats::{Histogram, LatencySampler};

/// Streaming aggregation of [`TrapBill`] activity ledgers.
///
/// Handler bills take only a few distinct shapes per run — one per
/// pointer/invalidation count the handlers encounter — so instead of
/// retaining every bill (formerly an unbounded `Vec<TrapBill>` capped
/// at 50 000 entries) we count occurrences per distinct ledger.
/// Memory is O(distinct shapes) regardless of run length, and the
/// Table 2 median-by-total selection is reproduced by walking the
/// shapes in sorted-total order with their counts.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct BillAggregator {
    /// Distinct ledgers in first-seen order, with occurrence counts.
    groups: Vec<(TrapBill, u64)>,
    count: u64,
}

impl BillAggregator {
    /// Creates an empty aggregator.
    pub fn new() -> Self {
        BillAggregator::default()
    }

    /// Folds one bill into the aggregate.
    pub fn record(&mut self, bill: &TrapBill) {
        self.count += 1;
        match self.groups.iter_mut().find(|(b, _)| b == bill) {
            Some((_, c)) => *c += 1,
            None => self.groups.push((*bill, 1)),
        }
    }

    /// Total bills recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether no bill has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Number of distinct ledger shapes seen.
    pub fn distinct(&self) -> usize {
        self.groups.len()
    }

    /// Folds another aggregate into this one. Used when combining
    /// per-node aggregators into a machine total: the groups of
    /// `other` are folded in their stored order, so merging node
    /// aggregators in node-index order yields the same group list no
    /// matter how nodes were partitioned across event lanes.
    pub fn merge(&mut self, other: &BillAggregator) {
        for (bill, n) in &other.groups {
            self.count += n;
            match self.groups.iter_mut().find(|(b, _)| b == bill) {
                Some((_, c)) => *c += n,
                None => self.groups.push((*bill, *n)),
            }
        }
    }

    /// The bill at position `(count - 1) / 2` of the recorded multiset
    /// ordered by total occupancy — the paper's "median request of
    /// each type" used for the Table 2 breakdown.
    pub fn median_bill(&self) -> Option<TrapBill> {
        if self.count == 0 {
            return None;
        }
        let mut order: Vec<usize> = (0..self.groups.len()).collect();
        order.sort_by_key(|&i| self.groups[i].0.total());
        let target = (self.count - 1) / 2;
        let mut seen = 0u64;
        for &i in &order {
            let (bill, c) = &self.groups[i];
            seen += *c;
            if seen > target {
                return Some(*bill);
            }
        }
        None
    }
}

/// Everything measured during one machine run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MachineStats {
    /// Completed read operations.
    pub reads: u64,
    /// Completed write (and RMW) operations.
    pub writes: u64,
    /// Read/write operations satisfied without a protocol transaction.
    pub hits: u64,
    /// Operations that required a protocol transaction.
    pub misses: u64,
    /// Zero-pointer-protocol local fills that bypassed the protocol.
    pub local_fast_fills: u64,
    /// BUSY bounces absorbed by requesters (each causes a backoff and
    /// retry).
    pub busy_retries: u64,
    /// Upgrade acknowledgments that arrived after the line was
    /// invalidated (request re-issued).
    pub upgrade_races: u64,
    /// Barrier episodes completed.
    pub barriers: u64,
    /// FIFO-lock hand-overs to a waiting node.
    pub lock_handoffs: u64,
    /// Lock grants that found the lock already held (mutual-exclusion
    /// violations; counted only when the coherence sanitizer is on).
    pub lock_conflicts: u64,
    /// Watchdog activations (livelock protection).
    pub watchdog_fires: u64,
    /// Aggregated protocol-engine counters over all home nodes.
    pub engine: EngineStats,
    /// Aggregated cache counters over all nodes.
    pub cache: CacheStats,
    /// Network counters.
    pub net: NetStats,
    /// Latency samples for read-extend handler invocations (Table 1).
    pub read_trap_latency: LatencySampler,
    /// Latency samples for write-extend handler invocations (Table 1).
    pub write_trap_latency: LatencySampler,
    /// Aggregated activity ledgers for read-extend traps (Table 2).
    pub read_trap_bills: BillAggregator,
    /// Aggregated activity ledgers for write-extend traps (Table 2).
    pub write_trap_bills: BillAggregator,
    /// Worker-set size histogram (Figure 6), if tracking was enabled.
    pub worker_sets: Option<Histogram>,
    /// Per-node cycles spent inside protocol handlers.
    pub trap_cycles: u64,
}

impl MachineStats {
    fn add_engine(&mut self, e: EngineStats) {
        let s = &mut self.engine;
        s.read_reqs += e.read_reqs;
        s.write_reqs += e.write_reqs;
        s.traps += e.traps;
        s.read_extend_traps += e.read_extend_traps;
        s.write_extend_traps += e.write_extend_traps;
        s.ack_traps += e.ack_traps;
        s.last_ack_traps += e.last_ack_traps;
        s.busy_traps += e.busy_traps;
        s.trap_cycles += e.trap_cycles;
        s.invs_sent += e.invs_sent;
        s.busys_sent += e.busys_sent;
        s.stale_msgs += e.stale_msgs;
    }

    fn add_cache(&mut self, c: CacheStats) {
        let s = &mut self.cache;
        s.hits += c.hits;
        s.victim_hits += c.victim_hits;
        s.misses += c.misses;
        s.upgrade_misses += c.upgrade_misses;
        s.evictions += c.evictions;
        s.writebacks += c.writebacks;
        s.ifetches += c.ifetches;
        s.ifetch_misses += c.ifetch_misses;
        s.invalidations += c.invalidations;
    }

    /// Folds one node's engine and cache counters into the totals.
    pub fn absorb_node(&mut self, e: EngineStats, c: CacheStats) {
        self.add_engine(e);
        self.add_cache(c);
        self.trap_cycles += e.trap_cycles;
    }

    /// Folds another node's (or lane's) statistics into this one.
    ///
    /// Merging is associative and commutative for every counter,
    /// sampler and network field, so per-node statistics can be
    /// combined in any grouping — the sharded engine relies on this to
    /// report totals independent of how nodes were partitioned into
    /// lanes. The only order-sensitive field is the bill aggregators'
    /// internal group order, which is made canonical by always merging
    /// in node-index order (see [`BillAggregator::merge`]).
    /// `worker_sets` is machine-global and assigned after merging; it
    /// is left untouched here.
    pub fn merge(&mut self, other: &MachineStats) {
        self.reads += other.reads;
        self.writes += other.writes;
        self.hits += other.hits;
        self.misses += other.misses;
        self.local_fast_fills += other.local_fast_fills;
        self.busy_retries += other.busy_retries;
        self.upgrade_races += other.upgrade_races;
        self.barriers += other.barriers;
        self.lock_handoffs += other.lock_handoffs;
        self.lock_conflicts += other.lock_conflicts;
        self.watchdog_fires += other.watchdog_fires;
        self.add_engine(other.engine);
        self.add_cache(other.cache);
        self.net.merge(&other.net);
        self.read_trap_latency.merge(&other.read_trap_latency);
        self.write_trap_latency.merge(&other.write_trap_latency);
        self.read_trap_bills.merge(&other.read_trap_bills);
        self.write_trap_bills.merge(&other.write_trap_bills);
        self.trap_cycles += other.trap_cycles;
    }
}

/// The result of [`crate::Machine::run`].
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Total run time: the cycle at which the last node finished.
    pub cycles: Cycle,
    /// Events processed by the simulation engine.
    pub events: u64,
    /// Wall-clock seconds the host spent simulating.
    pub wall_seconds: f64,
    /// All measurements.
    pub stats: MachineStats,
}

impl RunReport {
    /// Run time in seconds at the 33 MHz Sparcle clock.
    pub fn seconds(&self) -> f64 {
        self.cycles.as_seconds_at_33mhz()
    }

    /// Simulator throughput: events processed per wall-clock second.
    pub fn events_per_sec(&self) -> f64 {
        if self.wall_seconds > 0.0 {
            self.events as f64 / self.wall_seconds
        } else {
            0.0
        }
    }

    /// Simulator throughput: simulated cycles per wall-clock second.
    pub fn sim_cycles_per_sec(&self) -> f64 {
        if self.wall_seconds > 0.0 {
            self.cycles.as_u64() as f64 / self.wall_seconds
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use limitless_core::{CostModel, HandlerImpl};

    #[test]
    fn absorb_accumulates() {
        let mut m = MachineStats::default();
        let e = EngineStats {
            traps: 3,
            trap_cycles: 100,
            ..EngineStats::default()
        };
        let c = CacheStats {
            hits: 7,
            ..CacheStats::default()
        };
        m.absorb_node(e, c);
        m.absorb_node(e, c);
        assert_eq!(m.engine.traps, 6);
        assert_eq!(m.cache.hits, 14);
        assert_eq!(m.trap_cycles, 200);
    }

    #[test]
    fn report_seconds_uses_33mhz() {
        let r = RunReport {
            cycles: Cycle(33_000_000),
            events: 0,
            wall_seconds: 0.0,
            stats: MachineStats::default(),
        };
        assert!((r.seconds() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn throughput_is_events_over_wallclock() {
        let r = RunReport {
            cycles: Cycle(500),
            events: 1000,
            wall_seconds: 0.5,
            stats: MachineStats::default(),
        };
        assert!((r.events_per_sec() - 2000.0).abs() < 1e-9);
        assert!((r.sim_cycles_per_sec() - 1000.0).abs() < 1e-9);
        let zero = RunReport {
            wall_seconds: 0.0,
            ..r
        };
        assert_eq!(zero.events_per_sec(), 0.0);
    }

    #[test]
    fn aggregator_median_matches_sorted_vec_selection() {
        let m = CostModel::new(HandlerImpl::FlexibleC);
        // The exact sequence the old Vec<TrapBill> would have held.
        let bills = [
            m.read_extend(6, false),
            m.read_extend(2, false),
            m.read_extend(6, false),
            m.read_extend(9, false),
            m.read_extend(2, false),
        ];
        let mut agg = BillAggregator::new();
        for b in &bills {
            agg.record(b);
        }
        let mut sorted = bills.to_vec();
        sorted.sort_by_key(|b| b.total());
        let expected = sorted[(sorted.len() - 1) / 2];
        assert_eq!(agg.median_bill(), Some(expected));
        assert_eq!(agg.count(), 5);
        assert_eq!(agg.distinct(), 3);
    }

    #[test]
    fn aggregator_empty_has_no_median() {
        let agg = BillAggregator::new();
        assert!(agg.median_bill().is_none());
        assert!(agg.is_empty());
    }

    #[test]
    fn aggregator_merge_matches_sequential_recording() {
        let m = CostModel::new(HandlerImpl::FlexibleC);
        let bills = [
            m.read_extend(6, false),
            m.read_extend(2, false),
            m.read_extend(6, false),
            m.read_extend(9, false),
        ];
        let mut whole = BillAggregator::new();
        let (mut a, mut b) = (BillAggregator::new(), BillAggregator::new());
        for (i, bill) in bills.iter().enumerate() {
            whole.record(bill);
            if i % 2 == 0 { &mut a } else { &mut b }.record(bill);
        }
        let mut merged = BillAggregator::new();
        merged.merge(&a);
        merged.merge(&b);
        assert_eq!(merged.count(), whole.count());
        assert_eq!(merged.distinct(), whole.distinct());
        assert_eq!(merged.median_bill(), whole.median_bill());
    }

    fn sample_stats(k: u64) -> MachineStats {
        let m = CostModel::new(HandlerImpl::FlexibleC);
        let mut s = MachineStats {
            reads: 10 * k,
            writes: k,
            hits: 3 + k,
            misses: k / 2,
            local_fast_fills: k % 3,
            busy_retries: k,
            upgrade_races: k % 2,
            barriers: 1,
            lock_handoffs: k % 5,
            lock_conflicts: 0,
            watchdog_fires: k % 7,
            trap_cycles: 100 * k,
            ..MachineStats::default()
        };
        s.absorb_node(
            EngineStats {
                traps: k,
                trap_cycles: 10 * k,
                invs_sent: k,
                ..EngineStats::default()
            },
            CacheStats {
                hits: 2 * k,
                evictions: k,
                ..CacheStats::default()
            },
        );
        s.read_trap_latency.record(40 + k);
        s.write_trap_latency.record(90 + k);
        s.read_trap_bills
            .record(&m.read_extend((k % 8) as usize + 1, false));
        s.write_trap_bills
            .record(&m.write_extend((k % 4) as usize + 1));
        s.net.messages = k;
        s.net.flits = 4 * k;
        s
    }

    /// The sharded engine sums per-node statistics lane by lane; the
    /// totals must not depend on how nodes were grouped, only on the
    /// node order inside the fold.
    #[test]
    fn machine_stats_merge_is_associative_across_groupings() {
        let parts: Vec<MachineStats> = (1..=6).map(sample_stats).collect();
        // Flat fold: (((s1 + s2) + s3) + ...)
        let mut flat = MachineStats::default();
        for p in &parts {
            flat.merge(p);
        }
        // Grouped fold, preserving node order: (s1+s2) + (s3+s4+s5) + (s6)
        let mut g1 = MachineStats::default();
        parts[..2].iter().for_each(|p| g1.merge(p));
        let mut g2 = MachineStats::default();
        parts[2..5].iter().for_each(|p| g2.merge(p));
        let mut g3 = MachineStats::default();
        parts[5..].iter().for_each(|p| g3.merge(p));
        let mut grouped = MachineStats::default();
        grouped.merge(&g1);
        grouped.merge(&g2);
        grouped.merge(&g3);
        assert_eq!(flat, grouped);
        assert_eq!(
            flat.read_trap_bills.median_bill(),
            grouped.read_trap_bills.median_bill()
        );
        // Counter-only fields are fully commutative too.
        let mut rev = MachineStats::default();
        for p in parts.iter().rev() {
            rev.merge(p);
        }
        assert_eq!(rev.reads, flat.reads);
        assert_eq!(rev.engine.traps, flat.engine.traps);
        assert_eq!(rev.net.messages, flat.net.messages);
        assert_eq!(rev.trap_cycles, flat.trap_cycles);
    }
}
