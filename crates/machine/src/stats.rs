//! Per-run measurement: what one simulation reports.

use limitless_cache::CacheStats;
use limitless_core::{EngineStats, TrapBill};
use limitless_net::NetStats;
use limitless_sim::Cycle;
use limitless_stats::{Histogram, LatencySampler};

/// Everything measured during one machine run.
#[derive(Clone, Debug, Default)]
pub struct MachineStats {
    /// Completed read operations.
    pub reads: u64,
    /// Completed write (and RMW) operations.
    pub writes: u64,
    /// Read/write operations satisfied without a protocol transaction.
    pub hits: u64,
    /// Operations that required a protocol transaction.
    pub misses: u64,
    /// Zero-pointer-protocol local fills that bypassed the protocol.
    pub local_fast_fills: u64,
    /// BUSY bounces absorbed by requesters (each causes a backoff and
    /// retry).
    pub busy_retries: u64,
    /// Upgrade acknowledgments that arrived after the line was
    /// invalidated (request re-issued).
    pub upgrade_races: u64,
    /// Barrier episodes completed.
    pub barriers: u64,
    /// FIFO-lock hand-overs to a waiting node.
    pub lock_handoffs: u64,
    /// Watchdog activations (livelock protection).
    pub watchdog_fires: u64,
    /// Aggregated protocol-engine counters over all home nodes.
    pub engine: EngineStats,
    /// Aggregated cache counters over all nodes.
    pub cache: CacheStats,
    /// Network counters.
    pub net: NetStats,
    /// Latency samples for read-extend handler invocations (Table 1).
    pub read_trap_latency: LatencySampler,
    /// Latency samples for write-extend handler invocations (Table 1).
    pub write_trap_latency: LatencySampler,
    /// Retained activity ledgers for read-extend traps (Table 2;
    /// bounded).
    pub read_trap_bills: Vec<TrapBill>,
    /// Retained activity ledgers for write-extend traps (Table 2;
    /// bounded).
    pub write_trap_bills: Vec<TrapBill>,
    /// Worker-set size histogram (Figure 6), if tracking was enabled.
    pub worker_sets: Option<Histogram>,
    /// Per-node cycles spent inside protocol handlers.
    pub trap_cycles: u64,
}

impl MachineStats {
    fn add_engine(&mut self, e: EngineStats) {
        let s = &mut self.engine;
        s.read_reqs += e.read_reqs;
        s.write_reqs += e.write_reqs;
        s.traps += e.traps;
        s.read_extend_traps += e.read_extend_traps;
        s.write_extend_traps += e.write_extend_traps;
        s.ack_traps += e.ack_traps;
        s.last_ack_traps += e.last_ack_traps;
        s.busy_traps += e.busy_traps;
        s.trap_cycles += e.trap_cycles;
        s.invs_sent += e.invs_sent;
        s.busys_sent += e.busys_sent;
        s.stale_msgs += e.stale_msgs;
    }

    fn add_cache(&mut self, c: CacheStats) {
        let s = &mut self.cache;
        s.hits += c.hits;
        s.victim_hits += c.victim_hits;
        s.misses += c.misses;
        s.upgrade_misses += c.upgrade_misses;
        s.evictions += c.evictions;
        s.writebacks += c.writebacks;
        s.ifetches += c.ifetches;
        s.ifetch_misses += c.ifetch_misses;
        s.invalidations += c.invalidations;
    }

    /// Folds one node's engine and cache counters into the totals.
    pub fn absorb_node(&mut self, e: EngineStats, c: CacheStats) {
        self.add_engine(e);
        self.add_cache(c);
        self.trap_cycles += e.trap_cycles;
    }
}

/// The result of [`crate::Machine::run`].
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Total run time: the cycle at which the last node finished.
    pub cycles: Cycle,
    /// Events processed by the simulation engine.
    pub events: u64,
    /// All measurements.
    pub stats: MachineStats,
}

impl RunReport {
    /// Run time in seconds at the 33 MHz Sparcle clock.
    pub fn seconds(&self) -> f64 {
        self.cycles.as_seconds_at_33mhz()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_accumulates() {
        let mut m = MachineStats::default();
        let e = EngineStats {
            traps: 3,
            trap_cycles: 100,
            ..EngineStats::default()
        };
        let c = CacheStats {
            hits: 7,
            ..CacheStats::default()
        };
        m.absorb_node(e, c);
        m.absorb_node(e, c);
        assert_eq!(m.engine.traps, 6);
        assert_eq!(m.cache.hits, 14);
        assert_eq!(m.trap_cycles, 200);
    }

    #[test]
    fn report_seconds_uses_33mhz() {
        let r = RunReport {
            cycles: Cycle(33_000_000),
            events: 0,
            stats: MachineStats::default(),
        };
        assert!((r.seconds() - 1.0).abs() < 1e-9);
    }
}
