//! Whole-machine behaviour tests: every protocol in the spectrum must
//! run arbitrary programs to completion with the coherence checker
//! enabled and produce identical memory contents.

use limitless_core::ProtocolSpec;
use limitless_sim::{Addr, NodeId, SplitMix64};

use crate::config::MachineConfig;
use crate::machine::Machine;
use crate::program::{FnProgram, Op, Program, Rmw, ScriptProgram};

fn all_protocols() -> Vec<ProtocolSpec> {
    vec![
        ProtocolSpec::zero_ptr(),
        ProtocolSpec::one_ptr_ack(),
        ProtocolSpec::one_ptr_lack(),
        ProtocolSpec::one_ptr_hw(),
        ProtocolSpec::limitless(2),
        ProtocolSpec::limitless(5),
        ProtocolSpec::dir1_sw(),
        ProtocolSpec::full_map(),
    ]
}

fn machine(nodes: usize, p: ProtocolSpec) -> Machine {
    Machine::new(
        MachineConfig::builder()
            .nodes(nodes)
            .protocol(p)
            .check_coherence(true)
            .build(),
    )
}

#[test]
fn single_writer_value_visible_to_all_readers() {
    for p in all_protocols() {
        let mut m = machine(4, p);
        let mut progs: Vec<Box<dyn Program>> = Vec::new();
        progs.push(Box::new(ScriptProgram::new(vec![
            Op::Write(Addr(0x100), 42),
            Op::Barrier,
        ])));
        for _ in 1..4 {
            progs.push(Box::new(ScriptProgram::new(vec![
                Op::Barrier,
                Op::Read(Addr(0x100)),
            ])));
        }
        m.load(progs);
        m.run();
        assert_eq!(m.peek(Addr(0x100)), 42, "{p}");
    }
}

#[test]
fn wide_sharing_then_write_invalidates_under_every_protocol() {
    for p in all_protocols() {
        let mut m = machine(8, p);
        // Everyone reads the block; node 7 then writes; everyone
        // re-reads and must see the new value.
        let mut progs: Vec<Box<dyn Program>> = Vec::new();
        for i in 0..8u16 {
            let mut ops = vec![Op::Read(Addr(0x200)), Op::Barrier];
            if i == 7 {
                ops.push(Op::Write(Addr(0x200), 99));
            }
            ops.push(Op::Barrier);
            ops.push(Op::Read(Addr(0x200)));
            progs.push(Box::new(ScriptProgram::new(ops)));
        }
        m.load(progs);
        let report = m.run();
        assert_eq!(m.peek(Addr(0x200)), 99, "{p}");
        assert!(report.stats.engine.invs_sent > 0, "{p} must invalidate");
    }
}

#[test]
fn rmw_increments_are_atomic_across_nodes() {
    for p in [
        ProtocolSpec::zero_ptr(),
        ProtocolSpec::one_ptr_lack(),
        ProtocolSpec::limitless(5),
        ProtocolSpec::full_map(),
    ] {
        let mut m = machine(8, p);
        let progs: Vec<Box<dyn Program>> = (0..8)
            .map(|_| {
                Box::new(ScriptProgram::new(vec![
                    Op::Rmw(Addr(0x300), Rmw::Add(1)),
                    Op::Rmw(Addr(0x300), Rmw::Add(1)),
                    Op::Rmw(Addr(0x300), Rmw::Add(1)),
                ])) as Box<dyn Program>
            })
            .collect();
        m.load(progs);
        m.run();
        assert_eq!(m.peek(Addr(0x300)), 24, "{p}");
    }
}

/// Random mixed workload: every protocol must produce the exact same
/// final memory image (they implement the same memory model), and the
/// coherence checker must stay quiet.
#[test]
fn random_stress_all_protocols_agree_on_memory() {
    let nodes = 6;
    let blocks = 12u64;
    let iters = 120;

    let make_progs = |seed: u64| -> Vec<Box<dyn Program>> {
        (0..nodes)
            .map(|i| {
                let mut rng = SplitMix64::new(seed ^ (i as u64 * 7919));
                let mut step = 0usize;
                Box::new(FnProgram(move |node: NodeId, _last| {
                    if step >= iters {
                        return Op::Finish;
                    }
                    step += 1;
                    // Periodic barriers keep nodes loosely synchronized
                    // so writes are ordered across phases.
                    if step.is_multiple_of(40) {
                        return Op::Barrier;
                    }
                    if rng.next_below(4) == 0 {
                        // Writes are partitioned: node i only writes
                        // blocks ≡ i (mod nodes), so the final memory
                        // image is timing-independent and must agree
                        // across protocols. Reads roam freely.
                        let mine = (0..blocks)
                            .filter(|b| b % nodes as u64 == u64::from(node.0))
                            .collect::<Vec<_>>();
                        let b = mine[rng.next_below(mine.len() as u64) as usize];
                        let addr = Addr(0x1000 + b * 16);
                        Op::Write(addr, u64::from(node.0) * 1000 + step as u64)
                    } else {
                        let addr = Addr(0x1000 + rng.next_below(blocks) * 16);
                        Op::Read(addr)
                    }
                })) as Box<dyn Program>
            })
            .collect()
    };

    let mut reference: Option<Vec<u64>> = None;
    for p in all_protocols() {
        eprintln!("stress: {p}");
        let mut m = machine(nodes, p);
        m.load(make_progs(42));
        m.run();
        let image: Vec<u64> = (0..blocks).map(|b| m.peek(Addr(0x1000 + b * 16))).collect();
        match &reference {
            None => reference = Some(image),
            Some(r) => assert_eq!(r, &image, "memory image differs under {p}"),
        }
    }
}

#[test]
fn runs_are_cycle_deterministic() {
    for p in [ProtocolSpec::limitless(2), ProtocolSpec::zero_ptr()] {
        let run = || {
            let m = machine(4, p);
            let progs: Vec<Box<dyn Program>> = (0..4)
                .map(|i| {
                    Box::new(ScriptProgram::new(vec![
                        Op::Read(Addr(0x100)),
                        Op::Write(Addr(0x200 + i * 16), i),
                        Op::Barrier,
                        Op::Read(Addr(0x200)),
                        Op::Write(Addr(0x100), i),
                    ])) as Box<dyn Program>
                })
                .collect();
            let mut m2 = m;
            m2.load(progs);
            m2.run().cycles
        };
        assert_eq!(run(), run(), "{p}");
    }
}

#[test]
fn more_pointers_never_slow_down_wide_sharing() {
    // A widely-read, repeatedly-written block: the canonical LimitLESS
    // workload. Run time should not increase with hardware pointers.
    let time = |p: ProtocolSpec| {
        let mut m = machine(8, p);
        let progs: Vec<Box<dyn Program>> = (0..8)
            .map(|i| {
                let mut ops = Vec::new();
                for round in 0..6u64 {
                    ops.push(Op::Read(Addr(0x500)));
                    ops.push(Op::Barrier);
                    if i == (round % 8) as usize {
                        ops.push(Op::Write(Addr(0x500), round));
                    }
                    ops.push(Op::Barrier);
                }
                Box::new(ScriptProgram::new(ops)) as Box<dyn Program>
            })
            .collect();
        m.load(progs);
        m.run().cycles.as_u64()
    };
    let t0 = time(ProtocolSpec::zero_ptr());
    let t1 = time(ProtocolSpec::one_ptr_ack());
    let t5 = time(ProtocolSpec::limitless(5));
    let tf = time(ProtocolSpec::full_map());
    assert!(tf <= t5, "full-map {tf} should beat 5-ptr {t5}");
    assert!(t5 <= t1, "5-ptr {t5} should beat 1-ptr ACK {t1}");
    assert!(t1 <= t0, "1-ptr {t1} should beat software-only {t0}");
}

#[test]
fn zero_ptr_fast_path_serves_private_data_without_protocol() {
    let mut m = machine(4, ProtocolSpec::zero_ptr());
    // Each node works on its own home blocks only (addresses chosen so
    // block % 4 == node).
    let progs: Vec<Box<dyn Program>> = (0..4u64)
        .map(|i| {
            let base = 0x10_000 + i * 16; // block index ≡ i (mod 4)
            Box::new(ScriptProgram::new(vec![
                Op::Write(Addr(base), i),
                Op::Read(Addr(base)),
            ])) as Box<dyn Program>
        })
        .collect();
    m.load(progs);
    let report = m.run();
    assert!(report.stats.local_fast_fills >= 4);
    assert_eq!(report.stats.engine.traps, 0, "private data must not trap");
}

#[test]
fn zero_ptr_first_remote_access_flushes_home_copy() {
    let mut m = machine(2, ProtocolSpec::zero_ptr());
    // Node 0 dirties its own block; node 1 then reads it.
    let progs: Vec<Box<dyn Program>> = vec![
        Box::new(ScriptProgram::new(vec![
            Op::Write(Addr(0x10_000), 77), // block 0x1000 % 2 == home 0
            Op::Barrier,
            Op::Barrier,
        ])),
        Box::new(ScriptProgram::new(vec![
            Op::Barrier,
            Op::Read(Addr(0x10_000)),
            Op::Barrier,
        ])),
    ];
    m.load(progs);
    let report = m.run();
    assert!(report.stats.engine.traps > 0);
    assert_eq!(m.peek(Addr(0x10_000)), 77);
}

#[test]
fn watchdog_fires_under_ack_storm() {
    // S_{NB,ACK} with a hot widely-shared block: acknowledgment traps
    // hammer the home node until the watchdog intervenes.
    let mut m = Machine::new(
        MachineConfig::builder()
            .nodes(16)
            .protocol(ProtocolSpec::one_ptr_ack())
            .check_coherence(true)
            .watchdog(crate::config::WatchdogConfig {
                window: 400,
                grace: 200,
            })
            .build(),
    );
    let progs: Vec<Box<dyn Program>> = (0..16)
        .map(|i| {
            let mut ops = Vec::new();
            for round in 0..8u64 {
                ops.push(Op::Read(Addr(0x700)));
                ops.push(Op::Barrier);
                if i == (round % 16) as usize {
                    ops.push(Op::Write(Addr(0x700), round));
                }
                ops.push(Op::Barrier);
            }
            Box::new(ScriptProgram::new(ops)) as Box<dyn Program>
        })
        .collect();
    m.load(progs);
    let report = m.run();
    assert!(
        report.stats.watchdog_fires > 0,
        "expected watchdog activity, got {:?}",
        report.stats.watchdog_fires
    );
}

#[test]
fn busy_bounces_are_retried_until_success() {
    // Two nodes write the same block repeatedly: transactions collide
    // and somebody gets BUSY'd, but everything completes.
    let mut m = machine(4, ProtocolSpec::limitless(1));
    let progs: Vec<Box<dyn Program>> = (0..4)
        .map(|i| {
            let mut ops = Vec::new();
            for k in 0..10u64 {
                ops.push(Op::Read(Addr(0x900)));
                ops.push(Op::Write(Addr(0x900), i * 100 + k));
            }
            Box::new(ScriptProgram::new(ops)) as Box<dyn Program>
        })
        .collect();
    m.load(progs);
    let report = m.run();
    assert!(
        report.stats.busy_retries > 0,
        "contention must bounce someone"
    );
}

#[test]
fn worker_set_tracking_reports_sizes() {
    let mut m = Machine::new(
        MachineConfig::builder()
            .nodes(4)
            .protocol(ProtocolSpec::full_map())
            .track_worker_sets(true)
            .build(),
    );
    // All four nodes read block 0xA00, then node 0 writes it: one
    // worker set of size 4.
    let progs: Vec<Box<dyn Program>> = (0..4)
        .map(|i| {
            let mut ops = vec![Op::Read(Addr(0xA00)), Op::Barrier];
            if i == 0 {
                ops.push(Op::Write(Addr(0xA00), 1));
            }
            Box::new(ScriptProgram::new(ops)) as Box<dyn Program>
        })
        .collect();
    m.load(progs);
    let report = m.run();
    let h = report.stats.worker_sets.expect("tracking enabled");
    assert_eq!(h.count(4), 1, "one size-4 worker set, got {h:?}");
}

#[test]
fn table1_shape_handler_latencies_measured_in_vivo() {
    // A miniature WORKER-like pattern on DirnH5SNB: read traps and
    // write traps must be recorded with plausible totals (C model).
    let mut m = machine(16, ProtocolSpec::limitless(5));
    let progs: Vec<Box<dyn Program>> = (0..16)
        .map(|i| {
            let mut ops = Vec::new();
            for round in 0..4u64 {
                ops.push(Op::Read(Addr(0xB00)));
                ops.push(Op::Barrier);
                if i == 0 {
                    ops.push(Op::Write(Addr(0xB00), round));
                }
                ops.push(Op::Barrier);
            }
            Box::new(ScriptProgram::new(ops)) as Box<dyn Program>
        })
        .collect();
    m.load(progs);
    let report = m.run();
    let r = report
        .stats
        .read_trap_latency
        .mean()
        .expect("read traps happened");
    let w = report
        .stats
        .write_trap_latency
        .mean()
        .expect("write traps happened");
    // Table 1 magnitude: hundreds of cycles, writes dearer than reads.
    assert!(r > 200.0 && r < 1500.0, "read trap mean {r}");
    assert!(
        w > r,
        "write traps ({w}) should cost more than read traps ({r})"
    );
}

#[test]
fn dirty_eviction_writes_back_and_refetches() {
    // One node dirties many conflicting blocks to force dirty
    // evictions through a tiny cache.
    let mut m = Machine::new(
        MachineConfig::builder()
            .nodes(2)
            .protocol(ProtocolSpec::limitless(5))
            .cache(limitless_cache::CacheConfig {
                capacity_bytes: 8 * 16,
                line_bytes: 16,
                victim_lines: 0,
            })
            .check_coherence(true)
            .build(),
    );
    let progs: Vec<Box<dyn Program>> = vec![
        Box::new(ScriptProgram::new(
            (0..32u64)
                .map(|k| Op::Write(Addr(0x100 * k + 0x40), k))
                .chain((0..32u64).map(|k| Op::Read(Addr(0x100 * k + 0x40))))
                .collect(),
        )),
        Box::new(ScriptProgram::new(vec![])),
    ];
    m.load(progs);
    let report = m.run();
    assert!(
        report.stats.cache.writebacks > 0,
        "dirty evictions must write back"
    );
    for k in 0..32u64 {
        assert_eq!(m.peek(Addr(0x100 * k + 0x40)), k);
    }
}

#[test]
fn fifo_lock_provides_mutual_exclusion() {
    // Each node increments a shared counter inside a critical section
    // using plain read + write (not RMW) — only mutual exclusion makes
    // this correct.
    let mut m = machine(8, ProtocolSpec::limitless(5));
    let progs: Vec<Box<dyn Program>> = (0..8)
        .map(|_| {
            let mut step = 0;
            Box::new(FnProgram(move |_n: NodeId, last: Option<u64>| {
                step += 1;
                match step {
                    1 => Op::LockAcquire(7),
                    2 => Op::Read(Addr(0xD00)),
                    3 => Op::Write(Addr(0xD00), last.expect("read value") + 1),
                    4 => Op::LockRelease(7),
                    _ => Op::Finish,
                }
            })) as Box<dyn Program>
        })
        .collect();
    m.load(progs);
    let report = m.run();
    assert_eq!(
        m.peek(Addr(0xD00)),
        8,
        "lost updates without mutual exclusion"
    );
    assert_eq!(report.stats.lock_handoffs, 7);
}

#[test]
fn fifo_lock_grants_in_arrival_order() {
    // Node 0 takes the lock first (everyone else waits at a barrier),
    // then all others request it; each appends its id to a log under
    // the lock. Requests arrive in a deterministic order and the log
    // must match it.
    let mut m = machine(4, ProtocolSpec::full_map());
    let progs: Vec<Box<dyn Program>> = (0..4u64)
        .map(|i| {
            let mut step = 0;
            Box::new(FnProgram(move |_n: NodeId, last: Option<u64>| {
                step += 1;
                match (i, step) {
                    (0, 1) => Op::LockAcquire(1),
                    (0, 2) => Op::Barrier,
                    (0, 3) => Op::Compute(500), // hold while others queue
                    (0, 4) => Op::LockRelease(1),
                    (0, _) => Op::Finish,
                    (_, 1) => Op::Barrier,
                    (_, 2) => Op::Compute(i * 10), // stagger arrivals
                    (_, 3) => Op::LockAcquire(1),
                    (_, 4) => Op::Read(Addr(0xE00)),
                    (_, 5) => Op::Write(Addr(0xE00), last.unwrap() * 10 + i),
                    (_, 6) => Op::LockRelease(1),
                    _ => Op::Finish,
                }
            })) as Box<dyn Program>
        })
        .collect();
    m.load(progs);
    m.run();
    // Arrival order is 1, 2, 3 (staggered by compute), so the log
    // reads 123.
    assert_eq!(m.peek(Addr(0xE00)), 123);
}

#[test]
#[should_panic(expected = "does not hold")]
fn releasing_an_unheld_lock_panics() {
    let mut m = machine(2, ProtocolSpec::full_map());
    let progs: Vec<Box<dyn Program>> = vec![
        Box::new(ScriptProgram::new(vec![Op::LockAcquire(3), Op::Barrier])),
        Box::new(ScriptProgram::new(vec![Op::Barrier, Op::LockRelease(3)])),
    ];
    m.load(progs);
    m.run();
}

#[test]
fn uncontended_locks_are_cheap() {
    let time = |with_lock: bool| {
        let mut m = machine(2, ProtocolSpec::full_map());
        let mut ops = Vec::new();
        for k in 0..20u64 {
            if with_lock {
                ops.push(Op::LockAcquire(9));
            }
            ops.push(Op::Write(Addr(0xF00), k));
            if with_lock {
                ops.push(Op::LockRelease(9));
            }
        }
        let progs: Vec<Box<dyn Program>> = vec![
            Box::new(ScriptProgram::new(ops)),
            Box::new(ScriptProgram::new(vec![])),
        ];
        m.load(progs);
        m.run().cycles.as_u64()
    };
    let locked = time(true);
    let bare = time(false);
    // The lock adds bounded overhead, far from serializing the run.
    assert!(locked < bare + 20 * 120, "locked {locked} vs bare {bare}");
}
