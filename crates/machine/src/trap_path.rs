//! The home-side trap model: running a directory event, charging
//! software handler occupancy on the home processor, watchdog
//! bookkeeping and Table 1/2 latency billing.

use limitless_core::{DirEvent, HandlerKind, ProtoMsg, SendTiming};
use limitless_sim::{BlockAddr, Cycle, NodeId};

use crate::shard::{Shard, Wctx};

/// Record at most this many trap ledgers per node for Table 2 analysis
/// (the aggregation is O(distinct shapes) in memory, but the recorded
/// population is capped to match the historical retention bound).
const MAX_RETAINED_BILLS: u64 = 50_000;

impl Shard {
    /// Runs a directory event at its home node and schedules the
    /// resulting messages / trap occupancy. The engine writes its
    /// result into the lane's reusable scratch [`Outcome`]
    /// (`self.scratch_out`), so this hottest of paths performs no
    /// per-event allocation and no copy of the outcome struct.
    ///
    /// [`Outcome`]: limitless_core::Outcome
    pub(crate) fn home_event(
        &mut self,
        cx: &Wctx,
        home: NodeId,
        block: BlockAddr,
        ev: DirEvent,
        now: Cycle,
    ) {
        let idx = home.index() - self.first;
        // Split borrow: the engine fills the lane-level scratch
        // outcome in place.
        let Shard {
            nodes, scratch_out, ..
        } = self;
        nodes[idx].engine.handle_into(block, ev, scratch_out);
        #[cfg(debug_assertions)]
        if std::env::var("LIMITLESS_TRACE_BLOCK").ok().as_deref()
            == Some(&format!("{:#x}", block.0))
        {
            eprintln!(
                "[{now}] home {home}: {ev:?} -> inval_local={} trap={} sends={} stale={}",
                self.scratch_out.invalidate_local,
                self.scratch_out.trap.is_some(),
                self.scratch_out.sends.len(),
                self.scratch_out.stale
            );
        }
        if self.scratch_out.stale {
            return;
        }
        if self.scratch_out.invalidate_local {
            // Flush the home's own cached copy synchronously (the
            // CMMU invalidates its own tags without network traffic;
            // dirty data lands in local memory). If the home has a
            // *fill* for this block still in flight, mark it squashed:
            // the access completes but the line is not installed —
            // Alewife's transaction store closes this window of
            // vulnerability the same way (Kubiatowicz et al., ASPLOS
            // V).
            self.node_mut(home).cache.invalidate(block);
            cx.registry(|r| r.drop_copy(block, home));
            if let Some(p) = self.node_mut(home).pending.as_mut() {
                // Only reads need squashing: a pending write whose
                // line was invalidated will simply receive `WriteData`
                // (or fail its upgrade and refetch) and install a
                // fresh exclusive copy, which is correct.
                if !p.is_write && p.addr.block(cx.cfg.cache.line_bytes) == block {
                    p.squashed = true;
                }
            }
        }

        // Software handler occupancy (and watchdog bookkeeping).
        // `TrapBill` is `Copy`, so pulling it out of the scratch
        // outcome (only when a handler actually ran) releases the
        // borrow before the node statistics are updated.
        let mut handler_start = now;
        if let Some(bill) = self.scratch_out.trap {
            let watchdog_armed = cx.cfg.protocol.ack == limitless_core::AckMode::EveryAckTrap;
            let window = cx.cfg.watchdog.window;
            let grace = cx.cfg.watchdog.grace;
            let node = self.node_mut(home);
            handler_start = now.max(node.trap_busy_until).max(node.handlers_off_until);
            node.trap_busy_until = handler_start + Cycle(bill.total());
            node.trap_accum += bill.total();
            if watchdog_armed && node.trap_accum >= window {
                node.handlers_off_until = node.trap_busy_until + Cycle(grace);
                node.trap_accum = 0;
                node.stats.watchdog_fires += 1;
            }
            match bill.kind {
                HandlerKind::ReadExtend => {
                    node.stats.read_trap_latency.record(bill.total());
                    if node.stats.read_trap_bills.count() < MAX_RETAINED_BILLS {
                        node.stats.read_trap_bills.record(&bill);
                    }
                }
                HandlerKind::WriteExtend => {
                    node.stats.write_trap_latency.record(bill.total());
                    if node.stats.write_trap_bills.count() < MAX_RETAINED_BILLS {
                        node.stats.write_trap_bills.record(&bill);
                    }
                }
                _ => {}
            }
        }

        // `Send` is `Copy`: indexing copies each message out, so the
        // scratch outcome is not borrowed across the `self.send` call.
        for i in 0..self.scratch_out.sends.len() {
            let s = self.scratch_out.sends[i];
            let depart = match s.timing {
                SendTiming::Hw { offset } => now + Cycle(offset),
                SendTiming::Sw { offset } => handler_start + Cycle(offset),
            };
            if s.msg == ProtoMsg::Inv {
                // Ack balance: every invalidation on the wire must be
                // answered by exactly one acknowledgment.
                cx.registry(|r| r.note_inv_sent(block));
            }
            self.send(home, s.dst, block, s.msg, depart);
        }
    }
}
