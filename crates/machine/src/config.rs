//! Machine configuration.

use limitless_cache::CacheConfig;
use limitless_core::{CheckLevel, HandlerImpl, ProtocolSpec};
use limitless_net::NetConfig;

/// Processor-side timing parameters (cycles).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProcTiming {
    /// Cache hit.
    pub hit: u64,
    /// Extra penalty for a victim-cache hit (swap back).
    pub victim_hit: u64,
    /// Installing an arrived block into the cache.
    pub fill: u64,
    /// Issuing a request message from the processor to the CMMU.
    pub issue: u64,
    /// Instruction-fetch miss (local memory access).
    pub ifetch_miss: u64,
    /// Base backoff after a BUSY bounce (doubles-ish per retry).
    pub busy_backoff: u64,
}

impl Default for ProcTiming {
    fn default() -> Self {
        ProcTiming {
            hit: 2,
            victim_hit: 3,
            fill: 2,
            issue: 2,
            busy_backoff: 24,
            ifetch_miss: 10,
        }
    }
}

/// How the simulation engine executes a run.
///
/// Both modes produce bit-identical results — the same cycle counts,
/// statistics, memory images and read streams — because every event is
/// ordered by the same structural `(time, key)` total order. `Sharded`
/// trades a conservative-window synchronization protocol for wallclock
/// parallelism; see DESIGN.md §9.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EngineMode {
    /// One event lane processes every node (the reference engine).
    Serial,
    /// Conservative parallel-in-run simulation: nodes are partitioned
    /// into this many contiguous lanes, each with its own event queue
    /// and worker thread, synchronized at windows bounded by the
    /// minimum cross-node network latency.
    Sharded(usize),
}

/// Livelock-watchdog parameters (paper §4.1): a timer interrupt
/// detects protocol handlers starving user code and temporarily shuts
/// off asynchronous events. Armed automatically for the protocols that
/// trap on every acknowledgment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WatchdogConfig {
    /// Continuous handler occupancy (cycles) that counts as possible
    /// livelock.
    pub window: u64,
    /// How long asynchronous events stay off so user code can run.
    pub grace: u64,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        WatchdogConfig {
            window: 4_000,
            grace: 1_000,
        }
    }
}

/// Full machine configuration. Build with [`MachineConfig::builder`].
#[derive(Clone, Debug)]
pub struct MachineConfig {
    /// Number of processing nodes.
    pub nodes: usize,
    /// The coherence protocol.
    pub protocol: ProtocolSpec,
    /// Which handler implementation prices the software traps.
    pub handler_impl: HandlerImpl,
    /// Per-node cache geometry.
    pub cache: CacheConfig,
    /// Network timing.
    pub net: NetConfig,
    /// Processor timing.
    pub proc: ProcTiming,
    /// Watchdog parameters.
    pub watchdog: WatchdogConfig,
    /// One-cycle instruction access without touching the cache
    /// (Figure 3's "perfect ifetch" simulator option).
    pub perfect_ifetch: bool,
    /// Cycles for a full-machine barrier (Alewife's fast-barrier
    /// runtime; scales with log2(nodes) at build time).
    pub barrier_cycles: u64,
    /// Track worker sets (Figure 6); small runtime cost.
    pub track_worker_sets: bool,
    /// Coherence-sanitizer level: `Off` (default, zero cost), `Basic`
    /// (per-event directory invariants + the global copy registry +
    /// quiesce audit), or `Full` (adds per-access permission checks
    /// and the read-stream log for the differential oracle).
    pub check: CheckLevel,
    /// Execution engine: serial reference or sharded parallel lanes.
    pub engine: EngineMode,
    /// Sharded engine: minimum floor advance (simulated cycles)
    /// between publish/flush boundaries while a lane is making
    /// progress. `0` publishes every window; larger values coalesce
    /// boundary work at the cost of coarser cross-lane visibility.
    /// Blocked lanes always publish, so any value is deadlock-free —
    /// and results are bit-identical regardless.
    pub shard_publish_cycles: u64,
    /// Sharded engine: pin worker threads to distinct cores
    /// (`sched_setaffinity` on Linux, no-op elsewhere) so each lane's
    /// dense node columns stay cache-resident.
    pub pin_lanes: bool,
    /// Event-queue near-future window in cycles (power of two). `0`
    /// derives it from the node count at build time: big machines
    /// fan invalidations out to `O(nodes)` sharers at pipelined
    /// per-message offsets, so the ladder window widens with the
    /// machine instead of spilling those sends to the overflow heap.
    pub event_horizon: usize,
}

impl MachineConfig {
    /// Starts building a configuration (defaults: 16 nodes,
    /// `Dir_nH_5S_{NB}`, flexible-C handlers, Alewife cache, no victim
    /// cache, checking off).
    pub fn builder() -> MachineConfigBuilder {
        MachineConfigBuilder::default()
    }
}

/// Why a [`MachineConfig`] cannot be built.
///
/// Every invalid size that used to surface as a panic deep inside
/// machine construction (`DirectCache::new`'s power-of-two assert, the
/// `NodeId` sentinel collision) is caught here, at configuration time,
/// with a message naming the offending parameter.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConfigError {
    /// The node count is zero.
    ZeroNodes,
    /// The node count collides with the `NodeId::NONE` sentinel
    /// (`u16::MAX`): at most 65 535 nodes are addressable.
    TooManyNodes {
        /// The requested node count.
        requested: usize,
    },
    /// The cache line size is zero or not a power of two.
    BadLineBytes {
        /// The requested line size.
        line_bytes: u64,
    },
    /// The cache capacity is not a positive power-of-two multiple of
    /// the line size (the direct-mapped array needs a power-of-two set
    /// count).
    BadCacheGeometry {
        /// The requested capacity.
        capacity_bytes: u64,
        /// The requested line size.
        line_bytes: u64,
    },
    /// The explicit event horizon is not a power of two of at least
    /// [`limitless_sim::MIN_WINDOW`] cycles (the ladder queue's bucket
    /// bitmap is word-granular and indexed by mask).
    BadEventHorizon {
        /// The requested window width.
        requested: usize,
    },
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            ConfigError::ZeroNodes => write!(f, "machine needs at least one node"),
            ConfigError::TooManyNodes { requested } => write!(
                f,
                "machine of {requested} nodes exceeds the 65535-node \
                 NodeId address space"
            ),
            ConfigError::BadLineBytes { line_bytes } => write!(
                f,
                "cache line size must be a positive power of two bytes, got {line_bytes}"
            ),
            ConfigError::BadCacheGeometry {
                capacity_bytes,
                line_bytes,
            } => write!(
                f,
                "cache capacity ({capacity_bytes} B) over line size ({line_bytes} B) \
                 must give a positive power-of-two set count"
            ),
            ConfigError::BadEventHorizon { requested } => write!(
                f,
                "event horizon must be a power of two of at least {} cycles \
                 (or 0 to derive from the node count), got {requested}",
                limitless_sim::MIN_WINDOW
            ),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Builder for [`MachineConfig`].
///
/// # Examples
///
/// ```
/// use limitless_machine::MachineConfig;
/// use limitless_core::ProtocolSpec;
///
/// let cfg = MachineConfig::builder()
///     .nodes(64)
///     .protocol(ProtocolSpec::limitless(5))
///     .victim_cache(true)
///     .build();
/// assert_eq!(cfg.nodes, 64);
/// assert!(cfg.cache.victim_lines > 0);
/// ```
#[derive(Clone, Debug)]
pub struct MachineConfigBuilder {
    cfg: MachineConfig,
}

impl Default for MachineConfigBuilder {
    fn default() -> Self {
        MachineConfigBuilder {
            cfg: MachineConfig {
                nodes: 16,
                protocol: ProtocolSpec::limitless(5),
                handler_impl: HandlerImpl::FlexibleC,
                cache: CacheConfig::alewife(),
                net: NetConfig::default(),
                proc: ProcTiming::default(),
                watchdog: WatchdogConfig::default(),
                perfect_ifetch: false,
                barrier_cycles: 0, // derived at build time if left 0
                track_worker_sets: false,
                check: CheckLevel::Off,
                engine: EngineMode::Serial,
                shard_publish_cycles: 0,
                pin_lanes: true,
                event_horizon: 0, // derived at build time if left 0
            },
        }
    }
}

impl MachineConfigBuilder {
    /// Sets the node count.
    pub fn nodes(mut self, n: usize) -> Self {
        self.cfg.nodes = n;
        self
    }

    /// Sets the coherence protocol.
    pub fn protocol(mut self, p: ProtocolSpec) -> Self {
        self.cfg.protocol = p;
        self
    }

    /// Selects the handler implementation (C or assembly cost model).
    pub fn handler_impl(mut self, h: HandlerImpl) -> Self {
        self.cfg.handler_impl = h;
        self
    }

    /// Replaces the cache configuration.
    pub fn cache(mut self, c: CacheConfig) -> Self {
        self.cfg.cache = c;
        self
    }

    /// Enables or disables the victim cache (Alewife's 4-entry
    /// transaction-store buffering).
    pub fn victim_cache(mut self, on: bool) -> Self {
        self.cfg.cache.victim_lines = if on { 4 } else { 0 };
        self
    }

    /// Enables the perfect-ifetch simulator option.
    pub fn perfect_ifetch(mut self, on: bool) -> Self {
        self.cfg.perfect_ifetch = on;
        self
    }

    /// Replaces the network timing.
    pub fn net(mut self, n: NetConfig) -> Self {
        self.cfg.net = n;
        self
    }

    /// Replaces the processor timing.
    pub fn proc(mut self, p: ProcTiming) -> Self {
        self.cfg.proc = p;
        self
    }

    /// Replaces the watchdog parameters.
    pub fn watchdog(mut self, w: WatchdogConfig) -> Self {
        self.cfg.watchdog = w;
        self
    }

    /// Enables worker-set tracking.
    pub fn track_worker_sets(mut self, on: bool) -> Self {
        self.cfg.track_worker_sets = on;
        self
    }

    /// Enables the global coherence-invariant checker at
    /// [`CheckLevel::Basic`] (compatibility switch; use
    /// [`MachineConfigBuilder::check_level`] for finer control).
    pub fn check_coherence(mut self, on: bool) -> Self {
        self.cfg.check = if on {
            CheckLevel::Basic
        } else {
            CheckLevel::Off
        };
        self
    }

    /// Sets the coherence-sanitizer level directly.
    pub fn check_level(mut self, level: CheckLevel) -> Self {
        self.cfg.check = level;
        self
    }

    /// Overrides the barrier latency (otherwise derived from the node
    /// count).
    pub fn barrier_cycles(mut self, c: u64) -> Self {
        self.cfg.barrier_cycles = c;
        self
    }

    /// Selects the execution engine directly.
    pub fn engine_mode(mut self, m: EngineMode) -> Self {
        self.cfg.engine = m;
        self
    }

    /// Sets the minimum floor advance between sharded publish
    /// boundaries (see [`MachineConfig::shard_publish_cycles`]).
    pub fn shard_publish_cycles(mut self, c: u64) -> Self {
        self.cfg.shard_publish_cycles = c;
        self
    }

    /// Enables or disables pinning sharded worker threads to cores.
    pub fn pin_lanes(mut self, on: bool) -> Self {
        self.cfg.pin_lanes = on;
        self
    }

    /// Overrides the event-queue window width in cycles (otherwise
    /// derived from the node count at build time). Must be a power of
    /// two ≥ 64, or `0` to restore the derivation. Simulated results
    /// are bit-identical for every width; only host wall time and
    /// memory change.
    pub fn event_horizon(mut self, cycles: usize) -> Self {
        self.cfg.event_horizon = cycles;
        self
    }

    /// Convenience: `0` or `1` shard selects the serial engine, more
    /// selects the sharded parallel engine with that many lanes.
    pub fn shards(mut self, s: usize) -> Self {
        self.cfg.engine = if s <= 1 {
            EngineMode::Serial
        } else {
            EngineMode::Sharded(s)
        };
        self
    }

    /// Finalizes the configuration, validating every size the machine
    /// layers would otherwise panic on mid-construction.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] naming the offending parameter: a
    /// zero or sentinel-colliding node count, a non-power-of-two line
    /// size, or a cache geometry without a power-of-two set count.
    pub fn try_build(mut self) -> Result<MachineConfig, ConfigError> {
        if self.cfg.nodes == 0 {
            return Err(ConfigError::ZeroNodes);
        }
        if self.cfg.nodes > usize::from(u16::MAX) {
            return Err(ConfigError::TooManyNodes {
                requested: self.cfg.nodes,
            });
        }
        let cache = self.cfg.cache;
        if cache.line_bytes == 0 || !cache.line_bytes.is_power_of_two() {
            return Err(ConfigError::BadLineBytes {
                line_bytes: cache.line_bytes,
            });
        }
        let sets = cache.capacity_bytes / cache.line_bytes;
        if sets == 0
            || !sets.is_power_of_two()
            || !cache.capacity_bytes.is_multiple_of(cache.line_bytes)
        {
            return Err(ConfigError::BadCacheGeometry {
                capacity_bytes: cache.capacity_bytes,
                line_bytes: cache.line_bytes,
            });
        }
        if self.cfg.barrier_cycles == 0 {
            // A dissemination/tree barrier: O(log n) network phases.
            let log = usize::BITS - self.cfg.nodes.next_power_of_two().leading_zeros() - 1;
            self.cfg.barrier_cycles = 20 + 12 * u64::from(log);
        }
        match self.cfg.event_horizon {
            // Invalidation rounds pipeline one send per sharer, so a
            // wide-shared block on an N-node machine schedules events
            // ~N pipeline slots out; 4×nodes keeps that fan-out (and
            // the software extension's sequential sends) inside the
            // bucket window. 1024 remains the floor, matching the
            // historical fixed window on CM-5-scale machines.
            0 => {
                self.cfg.event_horizon = (4 * self.cfg.nodes)
                    .max(limitless_sim::DEFAULT_WINDOW)
                    .next_power_of_two();
            }
            h if h < limitless_sim::MIN_WINDOW || !h.is_power_of_two() => {
                return Err(ConfigError::BadEventHorizon { requested: h });
            }
            _ => {}
        }
        Ok(self.cfg)
    }

    /// Finalizes the configuration.
    ///
    /// # Panics
    ///
    /// Panics on any [`ConfigError`] (see
    /// [`MachineConfigBuilder::try_build`] for the fallible form).
    pub fn build(self) -> MachineConfig {
        match self.try_build() {
            Ok(cfg) => cfg,
            Err(e) => panic!("{e}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_are_alewife() {
        let cfg = MachineConfig::builder().build();
        assert_eq!(cfg.nodes, 16);
        assert_eq!(cfg.protocol, ProtocolSpec::limitless(5));
        assert_eq!(cfg.cache.sets(), 4096);
        assert_eq!(cfg.cache.victim_lines, 0);
        assert!(!cfg.perfect_ifetch);
    }

    #[test]
    fn barrier_latency_scales_with_nodes() {
        let small = MachineConfig::builder().nodes(4).build();
        let big = MachineConfig::builder().nodes(256).build();
        assert!(big.barrier_cycles > small.barrier_cycles);
    }

    #[test]
    fn victim_cache_switch() {
        let on = MachineConfig::builder().victim_cache(true).build();
        assert_eq!(on.cache.victim_lines, 4);
        let off = MachineConfig::builder()
            .victim_cache(true)
            .victim_cache(false)
            .build();
        assert_eq!(off.cache.victim_lines, 0);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_panics() {
        MachineConfig::builder().nodes(0).build();
    }

    #[test]
    fn try_build_rejects_zero_nodes() {
        assert_eq!(
            MachineConfig::builder().nodes(0).try_build().unwrap_err(),
            ConfigError::ZeroNodes
        );
    }

    #[test]
    fn try_build_rejects_sentinel_colliding_node_counts() {
        // u16::MAX is NodeId::NONE; one fewer is the last addressable
        // machine size.
        assert!(MachineConfig::builder().nodes(65_535).try_build().is_ok());
        assert_eq!(
            MachineConfig::builder()
                .nodes(65_536)
                .try_build()
                .unwrap_err(),
            ConfigError::TooManyNodes { requested: 65_536 }
        );
    }

    #[test]
    fn try_build_rejects_bad_line_sizes() {
        for bad in [0, 3, 24] {
            let mut cache = CacheConfig::alewife();
            cache.line_bytes = bad;
            assert_eq!(
                MachineConfig::builder()
                    .cache(cache)
                    .try_build()
                    .unwrap_err(),
                ConfigError::BadLineBytes { line_bytes: bad }
            );
        }
    }

    #[test]
    fn try_build_rejects_non_power_of_two_set_counts() {
        // 48 B / 16 B = 3 sets: previously a panic inside
        // `DirectCache::new` at machine construction, now a typed error
        // at configuration time.
        let mut cache = CacheConfig::alewife();
        cache.capacity_bytes = 48;
        assert_eq!(
            MachineConfig::builder()
                .cache(cache)
                .try_build()
                .unwrap_err(),
            ConfigError::BadCacheGeometry {
                capacity_bytes: 48,
                line_bytes: 16
            }
        );
        // Capacity smaller than one line: zero sets.
        cache.capacity_bytes = 8;
        assert!(matches!(
            MachineConfig::builder()
                .cache(cache)
                .try_build()
                .unwrap_err(),
            ConfigError::BadCacheGeometry { .. }
        ));
    }

    #[test]
    fn config_error_messages_name_the_parameter() {
        let err = MachineConfig::builder().nodes(0).try_build().unwrap_err();
        assert!(err.to_string().contains("at least one node"));
        let mut cache = CacheConfig::alewife();
        cache.capacity_bytes = 48;
        let err = MachineConfig::builder()
            .cache(cache)
            .try_build()
            .unwrap_err();
        assert!(err.to_string().contains("power-of-two set count"));
    }

    #[test]
    fn check_levels_compose() {
        assert_eq!(MachineConfig::builder().build().check, CheckLevel::Off);
        let basic = MachineConfig::builder().check_coherence(true).build();
        assert_eq!(basic.check, CheckLevel::Basic);
        let full = MachineConfig::builder()
            .check_level(CheckLevel::Full)
            .build();
        assert!(full.check.is_full());
    }

    #[test]
    fn explicit_barrier_latency_respected() {
        let cfg = MachineConfig::builder().barrier_cycles(99).build();
        assert_eq!(cfg.barrier_cycles, 99);
    }

    #[test]
    fn event_horizon_derivation_scales_with_nodes() {
        // CM-5-scale machines keep the historical 1024-cycle window;
        // 1024-node meshes widen to cover O(nodes) invalidation
        // fan-out. Always a power of two (the ladder masks with it).
        for (nodes, want) in [
            (16, 1024),
            (64, 1024),
            (256, 1024),
            (512, 2048),
            (1024, 4096),
        ] {
            let cfg = MachineConfig::builder().nodes(nodes).build();
            assert_eq!(cfg.event_horizon, want, "nodes {nodes}");
            assert!(cfg.event_horizon.is_power_of_two());
        }
    }

    #[test]
    fn explicit_event_horizon_respected_and_validated() {
        let cfg = MachineConfig::builder().event_horizon(8192).build();
        assert_eq!(cfg.event_horizon, 8192);
        for bad in [1, 32, 1000, 3000] {
            assert_eq!(
                MachineConfig::builder()
                    .event_horizon(bad)
                    .try_build()
                    .unwrap_err(),
                ConfigError::BadEventHorizon { requested: bad },
                "horizon {bad}"
            );
        }
        let err = MachineConfig::builder()
            .event_horizon(1000)
            .try_build()
            .unwrap_err();
        assert!(err.to_string().contains("power of two"), "{err}");
    }

    #[test]
    fn shard_selection_normalizes_degenerate_counts() {
        assert_eq!(MachineConfig::builder().build().engine, EngineMode::Serial);
        assert_eq!(
            MachineConfig::builder().shards(1).build().engine,
            EngineMode::Serial
        );
        assert_eq!(
            MachineConfig::builder().shards(0).build().engine,
            EngineMode::Serial
        );
        assert_eq!(
            MachineConfig::builder().shards(4).build().engine,
            EngineMode::Sharded(4)
        );
        assert_eq!(
            MachineConfig::builder()
                .engine_mode(EngineMode::Sharded(2))
                .build()
                .engine,
            EngineMode::Sharded(2)
        );
    }
}
