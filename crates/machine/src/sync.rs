//! The synchronization runtime: the all-node barrier and the FIFO
//! lock data type (§7), implemented as message protocols serviced by
//! home nodes — locks at `lock % nodes`, the barrier at node 0 — so
//! sync traffic obeys the same network-latency floor as coherence
//! traffic (which is what lets the sharded engine run it inside
//! conservative windows).

use std::collections::VecDeque;

use limitless_sim::{Cycle, NodeId};

use crate::machine::{Ev, Payload, SyncMsg};
use crate::shard::{Shard, Wctx};

/// Cycles the home's protocol extension software spends deciding a
/// lock grant (uncontended acquire or hand-over).
const LOCK_HANDLER: u64 = 4;

#[derive(Debug, Default)]
pub(crate) struct LockState {
    pub(crate) holder: Option<NodeId>,
    pub(crate) waiters: VecDeque<NodeId>,
}

impl Shard {
    /// The node servicing lock `lock`'s protocol messages.
    pub(crate) fn lock_home(&self, lock: u32) -> NodeId {
        NodeId::from_index(
            limitless_sim::fast_mod(u64::from(lock), self.total_nodes as u64) as usize,
        )
    }

    /// Acts on a synchronization message arriving at `dst`.
    pub(crate) fn sync_deliver(
        &mut self,
        cx: &Wctx,
        src: NodeId,
        dst: NodeId,
        msg: SyncMsg,
        now: Cycle,
    ) {
        match msg {
            SyncMsg::BarrierArrive => {
                self.node_mut(dst).barrier_arrived.push(src);
                self.barrier_check(cx, dst, now);
            }
            SyncMsg::NodeDone => {
                self.node_mut(dst).barrier_done_seen += 1;
                // A finishing node may complete the barrier for the
                // rest.
                self.barrier_check(cx, dst, now);
            }
            SyncMsg::BarrierGo => self.post(dst, now, Ev::Resume(dst)),
            SyncMsg::LockReq(lock) => self.lock_req(cx, lock, src, dst, now),
            SyncMsg::LockRel(lock) => self.lock_rel(cx, lock, src, dst, now),
            SyncMsg::LockGrant(lock) => {
                debug_assert_eq!(self.lock_home(lock), src, "grant from a non-home node");
                self.post(dst, now, Ev::Resume(dst));
            }
        }
    }

    /// The barrier master's bookkeeping: once every node has either
    /// arrived or finished for good, release the arrivals.
    ///
    /// No generation counter is needed: `barrier_arrived` is cleared
    /// before any release departs, and a released node cannot re-arrive
    /// until after its release — so arrivals never straddle episodes.
    fn barrier_check(&mut self, cx: &Wctx, master: NodeId, now: Cycle) {
        let total = self.total_nodes;
        let (arrived, done) = {
            let m = self.node(master);
            (m.barrier_arrived.len(), m.barrier_done_seen)
        };
        if arrived == 0 || arrived + done < total {
            return;
        }
        debug_assert_eq!(arrived + done, total, "barrier overshot the node count");
        self.node_mut(master).stats.barriers += 1;
        let waiters = std::mem::take(&mut self.node_mut(master).barrier_arrived);
        // The dissemination rounds are priced wholesale by
        // `barrier_cycles` plus per-destination mesh distance. The
        // sharded engine's lookahead matrix carries exactly this bound
        // on the master lane's rows (see `lookahead_matrix`), keeping
        // these direct cross-lane posts legal.
        let base = now + Cycle(cx.cfg.barrier_cycles);
        for w in waiters {
            let hops = u64::from(self.net.topology().hops(master, w));
            self.post(
                master,
                base + Cycle(hops),
                Ev::Deliver {
                    src: master,
                    dst: w,
                    payload: Payload::Sync(SyncMsg::BarrierGo),
                },
            );
        }
    }

    /// A lock request arriving at the lock's home: grant immediately if
    /// free, otherwise queue in strict arrival order.
    fn lock_req(&mut self, cx: &Wctx, lock: u32, src: NodeId, home: NodeId, now: Cycle) {
        debug_assert_eq!(self.lock_home(lock), home, "lock request at the wrong home");
        let free = {
            let st = self.node_mut(home).locks.entry(lock);
            if st.holder.is_none() && st.waiters.is_empty() {
                true
            } else {
                st.waiters.push_back(src); // strict FIFO
                false
            }
        };
        if free {
            self.grant(cx, lock, home, src, false, now + Cycle(LOCK_HANDLER));
        }
    }

    /// A lock release arriving at the lock's home: hand the lock to
    /// the oldest waiter, if any.
    fn lock_rel(&mut self, cx: &Wctx, lock: u32, src: NodeId, home: NodeId, now: Cycle) {
        let next = {
            let st = self
                .node_mut(home)
                .locks
                .get_mut(lock)
                .unwrap_or_else(|| panic!("release of unknown lock {lock}"));
            assert_eq!(
                st.holder,
                Some(src),
                "node {src} released lock {lock} it does not hold"
            );
            st.holder = None;
            st.waiters.pop_front()
        };
        if let Some(next) = next {
            self.grant(cx, lock, home, next, true, now + Cycle(LOCK_HANDLER));
        }
    }

    /// Records `to` as the holder and sends the grant.
    fn grant(&mut self, cx: &Wctx, lock: u32, home: NodeId, to: NodeId, handoff: bool, at: Cycle) {
        let prev = self.node_mut(home).locks.entry(lock).holder;
        if let Some(prev) = prev {
            // Mutual-exclusion violation: always observed (not just in
            // debug builds). Fatal under `CheckLevel::Full`; recorded
            // for the quiesce audit under `Basic`.
            self.node_mut(home).stats.lock_conflicts += 1;
            let msg = format!("lock {lock} granted to {to} while held by {prev}");
            if cx.cfg.check.is_full() {
                panic!("coherence sanitizer: {msg}");
            }
            cx.registry(|r| r.report_violation(msg));
        }
        self.node_mut(home).locks.entry(lock).holder = Some(to);
        if handoff {
            self.node_mut(home).stats.lock_handoffs += 1;
        }
        self.send_payload(home, to, Payload::Sync(SyncMsg::LockGrant(lock)), at);
    }
}
