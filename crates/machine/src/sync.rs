//! The synchronization runtime: the all-node barrier and the FIFO
//! lock data type (§7) serviced by the protocol extension software.

use std::collections::VecDeque;

use limitless_sim::{Cycle, NodeId};

use crate::machine::{Ev, Machine};

/// Cycles for an uncontended lock acquire or a lock hand-over (a
/// round trip to the lock object's home, serviced by the protocol
/// extension software's lock handler).
const LOCK_LATENCY: u64 = 40;

#[derive(Debug, Default)]
pub(crate) struct LockState {
    pub(crate) holder: Option<NodeId>,
    pub(crate) waiters: VecDeque<NodeId>,
}

impl Machine {
    pub(crate) fn barrier_wait(&mut self, n: NodeId, now: Cycle) {
        self.barrier_waiting.push(n);
        self.check_barrier(now);
    }

    pub(crate) fn check_barrier(&mut self, now: Cycle) {
        let alive = self.nodes.len() - self.finished;
        if alive > 0 && self.barrier_waiting.len() == alive {
            self.barrier_generation += 1;
            self.stats.barriers += 1;
            self.post(
                now + Cycle(self.cfg.barrier_cycles),
                Ev::BarrierRelease(self.barrier_generation),
            );
        }
    }

    pub(crate) fn release_barrier(&mut self, generation: u64, now: Cycle) {
        if generation != self.barrier_generation {
            return;
        }
        for n in std::mem::take(&mut self.barrier_waiting) {
            self.post(now, Ev::Resume(n));
        }
    }

    pub(crate) fn lock_acquire(&mut self, lock: u32, n: NodeId, now: Cycle) {
        let st = self.locks.entry(lock);
        if st.holder.is_none() && st.waiters.is_empty() {
            // Uncontended: one round trip to the lock object.
            st.holder = Some(n);
            self.post(now + Cycle(LOCK_LATENCY), Ev::Resume(n));
        } else {
            st.waiters.push_back(n); // strict FIFO
        }
    }

    pub(crate) fn lock_release(&mut self, lock: u32, n: NodeId, now: Cycle) {
        let st = self
            .locks
            .get_mut(lock)
            .unwrap_or_else(|| panic!("release of unknown lock {lock}"));
        assert_eq!(
            st.holder,
            Some(n),
            "node {n} released lock {lock} it does not hold"
        );
        st.holder = None;
        if let Some(next) = st.waiters.pop_front() {
            // Hand-over latency: the protocol software passes
            // the lock straight to the oldest waiter.
            self.post(now + Cycle(LOCK_LATENCY), Ev::LockGrant(lock, next));
        }
        self.post(now + Cycle(4), Ev::Resume(n));
    }

    pub(crate) fn grant_lock(&mut self, lock: u32, holder: NodeId, now: Cycle) {
        let st = self.locks.get_mut(lock).expect("granting unknown lock");
        if let Some(prev) = st.holder {
            // Mutual-exclusion violation: always observed (not just in
            // debug builds). Fatal under `CheckLevel::Full`; recorded
            // for the quiesce audit under `Basic`.
            self.stats.lock_conflicts += 1;
            let msg = format!("lock {lock} granted to {holder} while held by {prev}");
            if self.cfg.check.is_full() {
                panic!("coherence sanitizer: {msg}");
            }
            if let Some(r) = self.registry.as_mut() {
                r.report_violation(msg);
            }
        }
        let st = self.locks.get_mut(lock).expect("granting unknown lock");
        st.holder = Some(holder);
        self.stats.lock_handoffs += 1;
        self.post(now, Ev::Resume(holder));
    }
}
