//! Interned dense storage for hot per-key machine state.
//!
//! Keys (word addresses, lock ids) are interned to consecutive `u32`
//! ids on first touch via the deterministic [`FxHashMap`]; the ids
//! index a dense `Vec`, so a repeated access costs one fast hash and
//! one bounds-checked index instead of a SipHash probe per map.

use std::hash::Hash;

use limitless_sim::FxHashMap;

#[derive(Clone, Debug)]
pub(crate) struct DenseMap<K, V> {
    ids: FxHashMap<K, u32>,
    values: Vec<V>,
}

impl<K, V> Default for DenseMap<K, V> {
    fn default() -> Self {
        DenseMap {
            ids: FxHashMap::default(),
            values: Vec::new(),
        }
    }
}

impl<K: Eq + Hash + Copy, V: Default> DenseMap<K, V> {
    /// Read-only lookup without interning.
    pub(crate) fn get(&self, k: K) -> Option<&V> {
        self.ids.get(&k).map(|&id| &self.values[id as usize])
    }

    /// Mutable lookup without interning.
    pub(crate) fn get_mut(&mut self, k: K) -> Option<&mut V> {
        match self.ids.get(&k) {
            Some(&id) => Some(&mut self.values[id as usize]),
            None => None,
        }
    }

    /// Interns `k` (default-initializing its slot on first touch) and
    /// returns the value.
    pub(crate) fn entry(&mut self, k: K) -> &mut V {
        let id = match self.ids.get(&k) {
            Some(&id) => id,
            None => {
                let id = u32::try_from(self.values.len()).expect("dense map id overflow");
                self.ids.insert(k, id);
                self.values.push(V::default());
                id
            }
        };
        &mut self.values[id as usize]
    }

    /// Number of interned keys.
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.values.len()
    }

    /// Forgets every interned key while keeping both allocations (the
    /// machine-reuse reset path).
    pub(crate) fn clear(&mut self) {
        self.ids.clear();
        self.values.clear();
    }

    /// Iterates every interned `(key, value)` pair in arbitrary order.
    pub(crate) fn iter(&self) -> impl Iterator<Item = (K, &V)> + '_ {
        self.ids
            .iter()
            .map(|(k, &id)| (*k, &self.values[id as usize]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entry_interns_and_persists() {
        let mut m: DenseMap<u64, u64> = DenseMap::default();
        *m.entry(10) = 7;
        *m.entry(20) = 8;
        assert_eq!(m.get(10), Some(&7));
        assert_eq!(m.get(20), Some(&8));
        assert_eq!(m.get(30), None);
        assert_eq!(m.len(), 2);
        *m.entry(10) = 9;
        assert_eq!(m.get(10), Some(&9));
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn iter_visits_every_entry() {
        let mut m: DenseMap<u64, u64> = DenseMap::default();
        *m.entry(3) = 30;
        *m.entry(1) = 10;
        let mut pairs: Vec<(u64, u64)> = m.iter().map(|(k, &v)| (k, v)).collect();
        pairs.sort_unstable();
        assert_eq!(pairs, vec![(1, 10), (3, 30)]);
    }

    #[test]
    fn get_mut_does_not_intern() {
        let mut m: DenseMap<u64, u64> = DenseMap::default();
        assert!(m.get_mut(1).is_none());
        assert_eq!(m.len(), 0);
        *m.entry(1) = 3;
        *m.get_mut(1).unwrap() += 1;
        assert_eq!(m.get(1), Some(&4));
    }
}
