//! The program abstraction: how applications drive the simulated
//! machine.
//!
//! NWO executes real Sparcle binaries; this simulator executes
//! *programs* — per-node state machines that emit typed operations.
//! The coherence protocols only ever observe the resulting memory
//! reference stream (addresses, read/write mix, synchronization), so a
//! program that reproduces an application's sharing structure
//! reproduces its protocol behaviour. See DESIGN.md for the
//! substitution argument.

use limitless_cache::InstrFootprint;
use limitless_sim::{Addr, NodeId};

/// One operation issued by a node's program.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Op {
    /// Load a shared-memory word; its value arrives in the next
    /// [`Program::next`] call.
    Read(Addr),
    /// Store a value to shared memory.
    Write(Addr, u64),
    /// Atomic read-modify-write (Alewife's fetch-op style primitives);
    /// behaves like a write for the coherence protocol and returns the
    /// *old* value.
    Rmw(Addr, Rmw),
    /// Execute for the given number of cycles without touching shared
    /// memory (instruction fetches still stream through the cache).
    Compute(u64),
    /// Join the all-node barrier; resume when every node arrives.
    Barrier,
    /// Acquire a FIFO lock (the §7 lock data type built on the
    /// protocol extension software): resume once the lock is held.
    /// Requests are granted strictly in arrival order.
    LockAcquire(u32),
    /// Release a FIFO lock, handing it to the oldest waiter (if any).
    ///
    /// Releasing a lock this node does not hold is a program bug and
    /// panics the simulation.
    LockRelease(u32),
    /// This node is done. Must not be followed by further operations,
    /// and no other node may be waiting at a barrier this node would
    /// have joined.
    Finish,
}

/// Atomic update applied by [`Op::Rmw`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Rmw {
    /// `mem += x`.
    Add(u64),
    /// `mem = x`.
    Exchange(u64),
    /// `mem = min(mem, x)` (branch-and-bound best updates).
    Min(u64),
    /// `mem = max(mem, x)`.
    Max(u64),
}

impl Rmw {
    /// Applies the update to `old`, returning the new value.
    pub fn apply(self, old: u64) -> u64 {
        match self {
            Rmw::Add(x) => old.wrapping_add(x),
            Rmw::Exchange(x) => x,
            Rmw::Min(x) => old.min(x),
            Rmw::Max(x) => old.max(x),
        }
    }
}

/// A per-node program: a deterministic state machine emitting
/// operations.
///
/// The machine calls [`Program::next`] with the result of the previous
/// operation (`Some(value)` after a `Read` or `Rmw`, `None`
/// otherwise). Implementations keep their own program counter.
pub trait Program: Send {
    /// Produces the next operation. `last_value` carries the value
    /// returned by the previous `Read`/`Rmw`, if any.
    fn next(&mut self, node: NodeId, last_value: Option<u64>) -> Op;

    /// The instruction working set this program streams through the
    /// combined cache (None = negligible code footprint).
    fn instr_footprint(&self, _node: NodeId) -> Option<InstrFootprint> {
        None
    }
}

/// A program defined by a closure (handy for tests).
pub struct FnProgram<F>(pub F);

impl<F> Program for FnProgram<F>
where
    F: FnMut(NodeId, Option<u64>) -> Op + Send,
{
    fn next(&mut self, node: NodeId, last_value: Option<u64>) -> Op {
        (self.0)(node, last_value)
    }
}

impl<F> std::fmt::Debug for FnProgram<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("FnProgram")
    }
}

/// A program assembled from a fixed list of operations (ends with an
/// implicit `Finish`).
#[derive(Clone, Debug)]
pub struct ScriptProgram {
    ops: Vec<Op>,
    pc: usize,
    record: bool,
    /// Values observed by `Read`/`Rmw` ops, for post-run inspection.
    pub observed: Vec<u64>,
}

impl ScriptProgram {
    /// Creates a program that runs `ops` then finishes, recording
    /// every observed read value into [`ScriptProgram::observed`].
    pub fn new(ops: Vec<Op>) -> Self {
        ScriptProgram {
            ops,
            pc: 0,
            record: true,
            observed: Vec::new(),
        }
    }

    /// Like [`ScriptProgram::new`], but observed values are discarded.
    /// Wrappers that never expose `observed` (the application scripts)
    /// use this to keep the per-read bookkeeping off the hot path.
    pub fn new_unrecorded(ops: Vec<Op>) -> Self {
        ScriptProgram {
            record: false,
            ..ScriptProgram::new(ops)
        }
    }
}

impl Program for ScriptProgram {
    fn next(&mut self, _node: NodeId, last_value: Option<u64>) -> Op {
        if self.record {
            if let Some(v) = last_value {
                self.observed.push(v);
            }
        }
        let op = self.ops.get(self.pc).copied().unwrap_or(Op::Finish);
        self.pc += 1;
        op
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rmw_semantics() {
        assert_eq!(Rmw::Add(5).apply(10), 15);
        assert_eq!(Rmw::Exchange(5).apply(10), 5);
        assert_eq!(Rmw::Min(5).apply(10), 5);
        assert_eq!(Rmw::Min(50).apply(10), 10);
        assert_eq!(Rmw::Max(50).apply(10), 50);
        assert_eq!(Rmw::Add(1).apply(u64::MAX), 0); // wrapping
    }

    #[test]
    fn script_program_plays_ops_then_finishes() {
        let mut p = ScriptProgram::new(vec![Op::Compute(5), Op::Read(Addr(16))]);
        assert_eq!(p.next(NodeId(0), None), Op::Compute(5));
        assert_eq!(p.next(NodeId(0), None), Op::Read(Addr(16)));
        assert_eq!(p.next(NodeId(0), Some(42)), Op::Finish);
        assert_eq!(p.next(NodeId(0), None), Op::Finish);
        assert_eq!(p.observed, vec![42]);
    }

    #[test]
    fn fn_program_wraps_closures() {
        let mut calls = 0;
        {
            let mut p = FnProgram(|_, _| {
                calls += 1;
                Op::Finish
            });
            assert_eq!(p.next(NodeId(1), None), Op::Finish);
        }
        assert_eq!(calls, 1);
    }
}
