//! The run drivers and the requester-side protocol.
//!
//! Two drivers share one handler body ([`Shard::handle`] and friends):
//!
//! * **serial** — one lane owns every node and runs a single unbounded
//!   window to completion;
//! * **sharded** — `S` lanes run asynchronously, each bounding its
//!   window end by the per-lane-pair lookahead matrix over its peers'
//!   published floors (`min over d != b of floor[d] + D[d][b]`, see
//!   [`crate::lane_sync`]). There is no driver and no barrier: lanes
//!   drain their inboxes, execute a window, flush their outboxes and
//!   tagged write logs to peer inboxes, publish a new floor, and — when
//!   blocked — attempt a quiescent snapshot that jumps the whole
//!   machine across idle stretches in one round.
//!
//! Because a cross-lane effect from lane `d` needs at least `D[d][b]`
//! cycles of simulated travel (a mesh message or a barrier release),
//! events below a lane's window end are causally complete, and each
//! lane executes its own events in the same strict `(time, key)` order
//! the serial engine uses — so both drivers produce bit-identical
//! results (asserted by the differential tests).
//!
//! Lanes are multiplexed onto at most `available_parallelism` OS
//! threads (cooperative round-robin within a thread), so the lane
//! *partition* — and with it the bit-identical event order — never
//! depends on the host. Threads are pinned to distinct cores on Linux.

use std::panic::AssertUnwindSafe;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use limitless_cache::{Access, LineState, INSTR_BLOCK_BASE};
use limitless_core::{BlockMsg, DirEvent, ProtoMsg};
use limitless_net::{FlitCount, NetStats};
use limitless_sim::{Addr, BlockAddr, Cycle, EventQueue, NodeId};

use crate::config::EngineMode;
use crate::lane_sync::{pin_current_thread, LaneSync};
use crate::machine::{Ev, Machine, Payload, Pending, SyncMsg, TieKey};
use crate::program::{Op, Rmw};
use crate::shard::{lane_of, Shard, Wctx, WriteRec};
use crate::stats::{MachineStats, RunReport};

/// Hard ceiling on simulation events — a drained queue that never
/// empties indicates livelock, which is a bug this backstop surfaces.
const MAX_EVENTS: u64 = 4_000_000_000;

/// With the sanitizer on, a requester bouncing off BUSY this many
/// times without completing is diagnosed as a livelock: the run panics
/// with the home directory's event history instead of spinning to the
/// event-limit backstop.
const CHECKED_RETRY_LIMIT: u32 = 10_000;

/// A lane's inbox: cross-lane events plus tagged write-log batches
/// from every peer, behind one mutex. Producers push at publish
/// boundaries; the owner drains at the top of each round.
#[derive(Default)]
struct Inbox {
    inner: Mutex<InboxInner>,
}

#[derive(Default)]
struct InboxInner {
    events: Vec<(Cycle, TieKey, Ev)>,
    writes: Vec<Arc<Vec<WriteRec>>>,
}

/// Driver-local per-lane scheduling state (never shared).
struct LaneRun {
    /// The lane finished (global quiescence observed).
    done: bool,
    /// Last published floor: the lane's promise that nothing below it
    /// will execute — drained events are checked against it.
    floor: u64,
    /// Best proven global event floor (from quiescent snapshots);
    /// monotone, so it keeps lifting idle peers' floors in
    /// [`LaneSync::jump_end`] without re-proving.
    g: u64,
    /// Drained cross-lane events not yet covered by a publish.
    uncovered: u64,
    /// Snapshot scratch (reserved once; keeps rounds allocation-free).
    snap: Vec<(u64, u64)>,
    /// Drain scratch, swapped with the inbox under its lock.
    evs: Vec<(Cycle, TieKey, Ev)>,
    wbatches: Vec<Arc<Vec<WriteRec>>>,
}

impl LaneRun {
    fn new(lanes: usize) -> Self {
        LaneRun {
            done: false,
            floor: 0,
            g: 0,
            uncovered: 0,
            snap: Vec::with_capacity(lanes),
            evs: Vec::new(),
            wbatches: Vec::new(),
        }
    }
}

/// Warns (once per process) that more lanes were requested than the
/// host has cores: the partition is kept — so results stay identical —
/// and lanes timeshare threads instead.
fn warn_oversubscribed(lanes: usize, cores: usize, threads: usize) {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        eprintln!(
            "limitless: {lanes} event lanes on a {cores}-core host; \
             multiplexing onto {threads} thread(s) (event order unchanged, \
             expect no parallel speedup)"
        );
    });
}

/// The busy-spin budget for this host: a real spin window when every
/// worker thread owns a core (always true after clamping), none when
/// there is only one thread (nothing external to wait for).
fn spin_budget_for(threads: usize) -> u32 {
    if threads > 1 {
        1 << 12
    } else {
        0
    }
}

/// Builds the per-lane-pair lookahead matrix `D[a][b]` (row-major):
/// the minimum simulated latency from an event on lane `a` to any
/// event it can cause on lane `b`. Two mechanisms cross lanes:
///
/// * a mesh message — at least `inject + CONTROL·flit +
///   range_hops(a, b)·hop` cycles after the emitting event;
/// * a barrier release — posted by the barrier master (node 0) at
///   `barrier_cycles + hops(0, dst)` after the closing arrival, so the
///   master's lane additionally carries that bound (raw hops, matching
///   `sync::barrier_check`).
///
/// Every off-diagonal entry is clamped to at least 1 so the floor
/// ratchet always progresses.
fn lookahead_matrix(m: &Machine, lanes: usize, bounds: &[usize]) -> Vec<u64> {
    let topo = m.net.topology();
    let cfg = &m.cfg.net;
    let msg_base = cfg.inject_cycles + u64::from(FlitCount::CONTROL.as_u32()) * cfg.flit_cycles;
    let mut dist = vec![0u64; lanes * lanes];
    for a in 0..lanes {
        let ra = bounds[a]..bounds[a + 1];
        for b in 0..lanes {
            if a == b {
                continue;
            }
            let rb = bounds[b]..bounds[b + 1];
            let hops = u64::from(topo.range_hops(ra.clone(), rb.clone()));
            let mut d = msg_base + hops * cfg.hop_cycles;
            if ra.start == 0 {
                // Lane `a` owns the barrier master.
                let release = m.cfg.barrier_cycles + u64::from(topo.range_hops(0..1, rb));
                d = d.min(release);
            }
            dist[a * lanes + b] = d.max(1);
        }
    }
    dist
}

/// Drains `lane`'s inbox into its queue and pending remote writes.
/// Returns the number of events drained. Must run *after* the round's
/// window end was computed from the peers' floors: an event flushed
/// before a peer published floor `F` is visible to whoever read
/// `floor >= F` and then took this lock.
fn drain_inbox(s: &mut Shard, run: &mut LaneRun, inbox: &Inbox, check: bool) -> u64 {
    {
        let mut inner = inbox.inner.lock().expect("inbox poisoned");
        if inner.events.is_empty() && inner.writes.is_empty() {
            return 0;
        }
        std::mem::swap(&mut run.evs, &mut inner.events);
        std::mem::swap(&mut run.wbatches, &mut inner.writes);
    }
    let drained = run.evs.len() as u64;
    for (at, key, ev) in run.evs.drain(..) {
        // A drained event below the lane's published floor means some
        // peer (or the matrix) broke the lookahead contract; with the
        // sanitizer on this must fail loudly even in release builds.
        if at.as_u64() < run.floor {
            let msg = format!(
                "cross-lane event at {at} arrived under lane {}'s published floor {}",
                s.lane, run.floor
            );
            if check {
                panic!("sanitizer: {msg}");
            }
            debug_assert!(false, "{msg}");
        }
        s.post_keyed(at, key, ev);
    }
    for batch in run.wbatches.drain(..) {
        s.take_rwrites(&batch);
    }
    drained
}

/// Flushes `lane`'s outboxes and write log to the peers' inboxes.
/// Event counts are noted on the board *before* the push so the
/// quiescent snapshot's sent-sum never undercounts in-flight events.
fn flush_lane(s: &mut Shard, sync: &LaneSync, inboxes: &[Inbox]) {
    for (dst, inbox) in inboxes.iter().enumerate() {
        if dst == s.lane || s.outboxes[dst].is_empty() {
            continue;
        }
        sync.note_sent(s.lane, s.outboxes[dst].len() as u64);
        let mut inner = inbox.inner.lock().expect("inbox poisoned");
        inner.events.append(&mut s.outboxes[dst]);
    }
    if !s.wlog.is_empty() {
        let batch = Arc::new(std::mem::take(&mut s.wlog));
        for (dst, inbox) in inboxes.iter().enumerate() {
            if dst != s.lane {
                let mut inner = inbox.inner.lock().expect("inbox poisoned");
                inner.writes.push(batch.clone());
            }
        }
    }
}

/// One scheduling round for a lane: window-end computation, inbox
/// drain, window execution, flush, publish, and — when blocked — the
/// quiescent-snapshot skip-jump. Returns whether the lane advanced.
fn lane_round(
    s: &mut Shard,
    run: &mut LaneRun,
    cx: &Wctx,
    sync: &LaneSync,
    inboxes: &[Inbox],
    max_events: u64,
    publish_stride: u64,
) -> bool {
    let me = s.lane;
    let check = cx.cfg.check.enabled();
    // 1. Window end from the peers' floors, lifted by any proven
    //    global floor. Reading floors *before* draining closes the
    //    race with peers flushing as they publish.
    let end = sync.jump_end(me, run.g);
    // 2. Drain the inbox.
    run.uncovered += drain_inbox(s, run, &inboxes[me], check);
    // 3. Execute everything strictly below the window end.
    let advanced = if s.next_time().is_some_and(|t| t.as_u64() < end) {
        s.t_end = Cycle(end);
        s.run_window(cx);
        true
    } else {
        false
    };
    // 4 + 5. Flush and publish (coupled: a published floor promises
    //    that every event it clears has been flushed). A positive
    //    publish stride coalesces boundary work while the lane is
    //    making progress; a blocked lane always publishes so the
    //    global ratchet keeps turning.
    let t_next = s.next_time().map_or(u64::MAX, |t| t.as_u64());
    let floor = t_next.min(end);
    if !advanced || floor >= run.floor.saturating_add(publish_stride) {
        flush_lane(s, sync, inboxes);
        sync.publish(me, floor, t_next, run.uncovered, s.executed);
        run.floor = floor;
        run.uncovered = 0;
    }
    if advanced {
        return true;
    }
    // 6. Blocked: attempt the quiescent snapshot.
    let Some(q) = sync.try_quiescent_min(&mut run.snap) else {
        return false;
    };
    assert!(
        q.executed < max_events,
        "event limit exceeded: probable livelock around {floor}"
    );
    if q.global_min == u64::MAX {
        // Global quiescence: every queue is empty and nothing is in
        // flight. Converge the replica and retire the lane.
        s.apply_rwrites_below(Cycle(u64::MAX), u64::MAX);
        run.done = true;
        return true;
    }
    if q.global_min > run.g {
        // A proven global event floor: jump this lane's window across
        // the idle stretch and re-publish so peers can follow.
        run.g = q.global_min;
        let end = sync.jump_end(me, run.g);
        let floor = t_next.min(end);
        if floor > run.floor {
            sync.publish(me, floor, t_next, run.uncovered, s.executed);
            run.floor = floor;
            run.uncovered = 0;
        }
        return t_next < end;
    }
    false
}

/// Runs a group of lanes on one OS thread, round-robin. With one
/// thread per lane this is a plain loop over a single lane; on an
/// oversubscribed host a thread interleaves its lanes cooperatively,
/// so the partition (and the event order) never changes — only the
/// wall-clock schedule does.
fn lane_group_loop(
    group: &mut [Shard],
    cx: &Wctx,
    sync: &LaneSync,
    inboxes: &[Inbox],
    max_events: u64,
    publish_stride: u64,
    spin_budget: u32,
) {
    let lanes = sync.lanes();
    let mut runs: Vec<LaneRun> = group.iter().map(|_| LaneRun::new(lanes)).collect();
    let mut spins = 0u32;
    loop {
        let mut live = false;
        let mut advanced = false;
        for (s, run) in group.iter_mut().zip(runs.iter_mut()) {
            if run.done {
                continue;
            }
            live = true;
            advanced |= lane_round(s, run, cx, sync, inboxes, max_events, publish_stride);
        }
        if !live || sync.is_poisoned() {
            return;
        }
        if advanced {
            spins = 0;
        } else if spins < spin_budget {
            spins += 1;
            std::hint::spin_loop();
        } else {
            std::thread::yield_now();
        }
    }
}

impl Machine {
    /// Runs the machine until every program has finished and all
    /// protocol traffic has drained. Returns the measurements.
    ///
    /// # Panics
    ///
    /// Panics if no programs were loaded, if the event limit is
    /// exceeded (livelock backstop), or — with coherence checking
    /// enabled — on a protocol invariant violation.
    pub fn run(&mut self) -> RunReport {
        assert!(self.loaded, "load programs before running");
        let start = Instant::now();
        let max_events = std::env::var("LIMITLESS_MAX_EVENTS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(MAX_EVENTS);
        let lanes = match self.cfg.engine {
            EngineMode::Serial => 1,
            EngineMode::Sharded(s) => s.clamp(1, self.nodes.len()),
        };
        let (events, net_stats) = if lanes <= 1 {
            self.run_serial(max_events)
        } else {
            self.run_sharded(lanes, max_events)
        };
        assert_eq!(
            self.finished,
            self.nodes.len(),
            "simulation drained with unfinished programs (deadlock?)"
        );
        if self.cfg.check.is_full() {
            self.read_log = Some(
                self.nodes
                    .iter_mut()
                    .map(|n| n.read_log.replace(Vec::new()).unwrap_or_default())
                    .collect(),
            );
        }
        if self.registry.is_some() {
            self.check_quiesce();
        }
        self.collect_report(start.elapsed().as_secs_f64(), events, net_stats)
    }

    /// The serial driver: one lane, every node, one window to `∞`.
    fn run_serial(&mut self, max_events: u64) -> (u64, NetStats) {
        let total = self.nodes.len();
        let mut shard = Shard {
            lane: 0,
            first: 0,
            lanes: 1,
            total_nodes: total,
            nodes: std::mem::take(&mut self.nodes),
            net: self.net.clone(),
            queue: EventQueue::with_window(self.cfg.event_horizon),
            slot: None,
            executed: 0,
            finished: 0,
            finish_time: Cycle::ZERO,
            mem: std::mem::take(&mut self.mem),
            record_writes: false,
            wlog: Vec::new(),
            rwrites: Vec::new(),
            rw_pos: 0,
            rw_gate: (Cycle(u64::MAX), u64::MAX),
            cur_time: Cycle::ZERO,
            cur_key: 0,
            dist_row: vec![0],
            outboxes: Vec::new(),
            t_end: Cycle(u64::MAX),
            max_events,
            scratch_out: limitless_core::Outcome::default(),
        };
        for i in 0..total {
            let n = NodeId::from_index(i);
            let key = shard.next_key(n);
            shard.queue.schedule_keyed(Cycle::ZERO, key, Ev::Resume(n));
        }
        let registry = self.registry.take().map(Mutex::new);
        let tracker = self.tracker.take().map(Mutex::new);
        {
            let cx = Wctx {
                cfg: &self.cfg,
                registry: registry.as_ref(),
                tracker: tracker.as_ref(),
            };
            shard.run_window(&cx);
        }
        self.nodes = shard.nodes;
        self.mem = shard.mem;
        self.registry = registry.map(|m| m.into_inner().expect("registry lock poisoned"));
        self.tracker = tracker.map(|m| m.into_inner().expect("tracker lock poisoned"));
        self.finished = shard.finished;
        self.finish_time = shard.finish_time;
        (shard.executed, shard.net.stats())
    }

    /// The asynchronous watermark driver: `lanes` event lanes bounded
    /// by the lookahead matrix over published floors, multiplexed onto
    /// at most `available_parallelism` pinned OS threads.
    fn run_sharded(&mut self, lanes: usize, max_events: u64) -> (u64, NetStats) {
        let total = self.nodes.len();

        // Partition the nodes into contiguous lanes.
        let mut bounds = vec![0usize; lanes + 1];
        for i in 0..total {
            bounds[lane_of(i, lanes, total) + 1] += 1;
        }
        for l in 0..lanes {
            bounds[l + 1] += bounds[l];
        }
        let dist = lookahead_matrix(self, lanes, &bounds);

        let mut all = std::mem::take(&mut self.nodes);
        let template_mem = std::mem::take(&mut self.mem);
        let mut shards: Vec<Shard> = Vec::with_capacity(lanes);
        for l in (0..lanes).rev() {
            let mut shard = Shard {
                lane: l,
                first: bounds[l],
                lanes,
                total_nodes: total,
                nodes: all.split_off(bounds[l]),
                net: self.net.clone(),
                queue: EventQueue::with_window(self.cfg.event_horizon),
                slot: None,
                executed: 0,
                finished: 0,
                finish_time: Cycle::ZERO,
                // Every lane starts from the same full replica of the
                // memory shadow; tagged write broadcasts keep them
                // converged (see the shard module docs).
                mem: template_mem.clone(),
                record_writes: true,
                wlog: Vec::new(),
                rwrites: Vec::new(),
                rw_pos: 0,
                rw_gate: (Cycle(u64::MAX), u64::MAX),
                cur_time: Cycle::ZERO,
                cur_key: 0,
                dist_row: dist[l * lanes..(l + 1) * lanes].to_vec(),
                outboxes: (0..lanes).map(|_| Vec::new()).collect(),
                t_end: Cycle::ZERO,
                max_events,
                scratch_out: limitless_core::Outcome::default(),
            };
            for i in bounds[l]..bounds[l + 1] {
                let n = NodeId::from_index(i);
                let key = shard.next_key(n);
                shard.queue.schedule_keyed(Cycle::ZERO, key, Ev::Resume(n));
            }
            shards.push(shard);
        }
        shards.reverse();

        let registry = self.registry.take().map(Mutex::new);
        let tracker = self.tracker.take().map(Mutex::new);
        let cx = Wctx {
            cfg: &self.cfg,
            registry: registry.as_ref(),
            tracker: tracker.as_ref(),
        };
        let sync = LaneSync::new(lanes, dist);
        let inboxes: Vec<Inbox> = (0..lanes).map(|_| Inbox::default()).collect();
        let publish_stride = self.cfg.shard_publish_cycles;

        // Clamp worker *threads* (never the lane partition, which
        // fixes the event order) to the host's parallelism.
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        let threads = lanes.min(cores);
        if threads < lanes {
            warn_oversubscribed(lanes, cores, threads);
        }
        let pin = self.cfg.pin_lanes && threads > 1;
        let spin_budget = spin_budget_for(threads);

        // Carve the shards into one contiguous group per thread.
        let mut groups: Vec<&mut [Shard]> = Vec::with_capacity(threads);
        let mut rest = shards.as_mut_slice();
        for t in 0..threads {
            let take = (t + 1) * lanes / threads - t * lanes / threads;
            let (g, r) = rest.split_at_mut(take);
            groups.push(g);
            rest = r;
        }

        std::thread::scope(|scope| {
            for (t, group) in groups.into_iter().enumerate() {
                let (cx, sync, inboxes) = (&cx, &sync, &inboxes);
                scope.spawn(move || {
                    if pin {
                        pin_current_thread(t);
                    }
                    let r = std::panic::catch_unwind(AssertUnwindSafe(|| {
                        lane_group_loop(
                            group,
                            cx,
                            sync,
                            inboxes,
                            max_events,
                            publish_stride,
                            spin_budget,
                        );
                    }));
                    if let Err(p) = r {
                        sync.poison();
                        std::panic::resume_unwind(p);
                    }
                });
            }
        });

        // Dissolve the lanes back into the machine. Every replica has
        // converged; lane 0's becomes the machine's memory shadow.
        let mut events = 0u64;
        let mut net_stats = NetStats::default();
        let mut nodes = Vec::with_capacity(total);
        self.finished = 0;
        self.finish_time = Cycle::ZERO;
        for (l, s) in shards.into_iter().enumerate() {
            events += s.executed;
            self.finished += s.finished;
            self.finish_time = self.finish_time.max(s.finish_time);
            net_stats.merge(&s.net.stats());
            nodes.extend(s.nodes);
            if l == 0 {
                self.mem = s.mem;
            }
        }
        self.nodes = nodes;
        self.registry = registry.map(|m| m.into_inner().expect("registry lock poisoned"));
        self.tracker = tracker.map(|m| m.into_inner().expect("tracker lock poisoned"));
        (events, net_stats)
    }

    /// Folds everything measured into the final report: per-node
    /// counters in node-index order (so the totals — including the
    /// bill-aggregator group order — are partition-independent), the
    /// merged network counters, and the worker-set histogram.
    fn collect_report(&mut self, wall_seconds: f64, events: u64, net: NetStats) -> RunReport {
        let mut stats = MachineStats::default();
        for node in &mut self.nodes {
            let per_node = std::mem::take(&mut node.stats);
            stats.merge(&per_node);
            stats.absorb_node(node.engine.stats(), node.cache.stats());
        }
        stats.net = net;
        stats.worker_sets = self.tracker.take().map(|t| t.finish());
        RunReport {
            cycles: self.finish_time,
            events,
            wall_seconds,
            stats,
        }
    }

    // ------------------------------------------------------ sanitizer

    /// The quiesce audit: with all programs finished and all traffic
    /// drained, the caches, the copy registry, every home directory
    /// and the sync runtime must agree exactly.
    ///
    /// # Panics
    ///
    /// Panics listing every discrepancy found.
    fn check_quiesce(&mut self) {
        // Forward any still-pending silent drops (direct-mapped
        // conflict evictions of clean lines) before auditing.
        for i in 0..self.nodes.len() {
            while let Some(b) = self.nodes[i].cache.pop_dropped() {
                if b.0 < INSTR_BLOCK_BASE {
                    if let Some(r) = self.registry.as_mut() {
                        r.drop_copy(b, NodeId::from_index(i));
                    }
                }
            }
        }
        let Some(r) = self.registry.as_ref() else {
            return;
        };
        let mut problems: Vec<String> = Vec::new();
        // Every cached copy must be registered with the right
        // permission.
        for (i, node) in self.nodes.iter().enumerate() {
            let n = NodeId::from_index(i);
            for (b, state) in node.cache.resident_blocks() {
                if b.0 >= INSTR_BLOCK_BASE {
                    continue;
                }
                match state {
                    LineState::Dirty if r.owner(b) != Some(n) => problems.push(format!(
                        "node {n} holds {b} dirty but the registry owner is {:?}",
                        r.owner(b)
                    )),
                    LineState::Shared if !r.is_sharer(b, n) => problems.push(format!(
                        "node {n} holds {b} shared but is not a registered sharer"
                    )),
                    _ => {}
                }
            }
        }
        // Every registered copy must be cached, and the block's home
        // directory must still track it (the directory may track a
        // superset — silent evictions leave stale pointers — but never
        // less than the true copy set).
        for (b, owner, sharers) in r.iter() {
            let home = self.home_of(b);
            let engine = &self.nodes[home.index()].engine;
            if let Some(o) = owner {
                if self.nodes[o.index()].cache.state_anywhere(b) != Some(LineState::Dirty) {
                    problems.push(format!(
                        "registry says {o} owns {b} but its cache disagrees"
                    ));
                }
                let dir_ok = if engine.local_fast_path(b) {
                    o == home
                } else {
                    engine.dir_owner(b) == Some(o)
                };
                if !dir_ok {
                    problems.push(format!(
                        "registry says {o} owns {b} but home {home}'s directory says {:?}",
                        engine.dir_owner(b)
                    ));
                }
            }
            for &s in sharers {
                if self.nodes[s.index()].cache.state_anywhere(b) != Some(LineState::Shared) {
                    problems.push(format!(
                        "registry says {s} shares {b} but its cache disagrees"
                    ));
                }
                if !engine.dir_tracks(b, s) {
                    problems.push(format!(
                        "registry says {s} shares {b} but home {home}'s directory does not track it"
                    ));
                }
            }
        }
        // Every directory entry must have settled into a stable,
        // internally consistent state.
        for (i, node) in self.nodes.iter().enumerate() {
            for v in node.engine.quiesce_violations() {
                problems.push(format!("home {}: {v}", NodeId::from_index(i)));
            }
        }
        // Every invalidation must have been acknowledged exactly once.
        for (b, bal) in r.unbalanced_invs() {
            problems.push(format!("{b}: {bal} invalidation(s) never acknowledged"));
        }
        // Deferred (non-fatal under Basic) violations.
        problems.extend(r.violations().iter().cloned());
        // The sync runtime must have drained.
        for node in &self.nodes {
            for (lock, st) in node.locks.iter() {
                if let Some(h) = st.holder {
                    problems.push(format!("lock {lock} still held by {h} at quiesce"));
                }
                if !st.waiters.is_empty() {
                    problems.push(format!(
                        "lock {lock} still has {} waiter(s) at quiesce",
                        st.waiters.len()
                    ));
                }
            }
        }
        if !self.nodes[0].barrier_arrived.is_empty() {
            problems.push(format!(
                "{} node(s) still waiting at a barrier at quiesce",
                self.nodes[0].barrier_arrived.len()
            ));
        }
        assert!(
            problems.is_empty(),
            "coherence sanitizer: quiesce audit failed with {} problem(s):\n  {}",
            problems.len(),
            problems.join("\n  ")
        );
    }
}

impl Shard {
    // ----------------------------------------------------- dispatch

    /// Executes one event.
    pub(crate) fn handle(&mut self, cx: &Wctx, now: Cycle, ev: Ev) {
        match ev {
            Ev::Resume(n) => self.step_program(cx, n, now),
            Ev::NetArrive {
                src,
                dst,
                flits,
                sent_at,
                payload,
            } => {
                // Resolve the receive side (rx-port contention and
                // serialization) on the lane that owns the receiver.
                let deliver = self.net.rx(now, dst, flits, sent_at);
                self.post(dst, deliver, Ev::Deliver { src, dst, payload });
            }
            Ev::Deliver { src, dst, payload } => match payload {
                Payload::Proto(bm) => self.deliver(cx, src, dst, bm, now),
                Payload::Sync(sm) => self.sync_deliver(cx, src, dst, sm, now),
            },
            Ev::Retry(n) => self.retry(cx, n, now),
        }
    }

    // ---------------------------------------------------- sanitizer

    /// Forwards silently dropped clean lines (direct-mapped conflict
    /// evictions of `Shared` copies, which send no message) from node
    /// `n`'s cache mirror to the registry. No-op when checking is off.
    ///
    /// Drops may sit in the mirror for arbitrary stretches of the run;
    /// the one ordering that matters is that a node's mirror is drained
    /// **before** the registry gains a copy for that node, so a stale
    /// pending drop of block `B` cannot delete a fresh registration of
    /// `B`. Hence the call sites: immediately ahead of every
    /// `registry_fill_*` (the cold miss paths) and at the start of the
    /// quiesce audit — never on the hit path.
    ///
    /// The gate is inline (one discriminant load and a predicted branch
    /// when checking is off); the drain loop itself stays outlined and
    /// cold.
    #[inline]
    fn drain_silent_drops(&mut self, cx: &Wctx, n: NodeId) {
        if cx.checking() {
            self.drain_silent_drops_slow(cx, n);
        }
    }

    #[cold]
    fn drain_silent_drops_slow(&mut self, cx: &Wctx, n: NodeId) {
        while let Some(b) = self.node_mut(n).cache.pop_dropped() {
            if b.0 < INSTR_BLOCK_BASE {
                cx.registry(|r| r.drop_copy(b, n));
            }
        }
    }

    /// Bounded-retry progress violated: diagnose the livelock with the
    /// home directory's event history instead of spinning to the
    /// event-limit backstop.
    #[cold]
    fn livelock_panic(&self, cx: &Wctx, dst: NodeId, addr: Addr, retries: u32) -> ! {
        let b = addr.block(cx.cfg.cache.line_bytes);
        let home = self.home_of(b);
        let dump = if self.owns(home) {
            self.node(home).engine.history_dump(b)
        } else {
            format!("(home {home} lives on another event lane; rerun with the serial engine for its event history)")
        };
        panic!(
            "coherence sanitizer: node {dst} bounced {retries} times \
             requesting {b} — bounded-retry progress violated (livelock)\n{dump}"
        );
    }

    /// The `CheckLevel::Full` freshness check: the simulator keeps one
    /// shadow memory, so a stale *value* is unobservable — instead a
    /// completing access must hold the permission the registry implies.
    #[cold]
    fn check_access_permission(&self, cx: &Wctx, n: NodeId, addr: Addr, is_write: bool) {
        let block = addr.block(cx.cfg.cache.line_bytes);
        let Some(owner) = cx.registry(|r| r.owner(block)) else {
            return;
        };
        if is_write {
            assert!(
                owner == Some(n),
                "coherence sanitizer: node {n} completed a write to {addr} ({block}) \
                 without exclusive ownership (registry owner: {owner:?})"
            );
        } else {
            assert!(
                owner.is_none() || owner == Some(n),
                "coherence sanitizer: node {n} completed a read of {addr} ({block}) \
                 while {owner:?} holds it exclusively"
            );
        }
    }

    // ------------------------------------------------------ programs

    /// Steps `n`'s program, chaining consecutive operations inline:
    /// after a cache hit, a compute phase or a local fast fill, if the
    /// resume moment is provably this lane's next event (nothing queued
    /// at or before it in `(time, key)` order, inline slot empty) and
    /// stays inside the window, the loop advances the clock and
    /// executes the next operation directly — no `Resume` event is
    /// built, scheduled, popped or dispatched. Each chained step still
    /// counts as one executed event, so event counts (and the total
    /// order) are exactly those of a queue-only run.
    fn step_program(&mut self, cx: &Wctx, n: NodeId, mut now: Cycle) {
        loop {
            // One node lookup covers the whole prologue (done flag,
            // trap occupancy, last value, program step).
            let node = self.node_mut(n);
            if node.done {
                return;
            }
            // Protocol handlers steal processor cycles: user code
            // resumes only when the handler (and any watchdog grace)
            // completes.
            let busy = node.trap_busy_until;
            if busy > now {
                self.post(n, busy, Ev::Resume(n));
                return;
            }
            node.trap_accum = 0; // user code made progress

            let last = node.last_value.take();
            let op = node.program.next(n, last);
            // The time this node's program resumes, when that is known
            // synchronously; `None` means the operation handed control
            // to the protocol or sync machinery, which resumes the
            // program itself.
            let resume = match op {
                Op::Compute(c) => {
                    let instr_blocks = (c / 8).max(1);
                    let penalty = self.ifetch(cx, n, instr_blocks, now);
                    Some(now + Cycle(c) + Cycle(penalty))
                }
                Op::Barrier => {
                    self.send_payload(
                        n,
                        NodeId::from_index(0),
                        Payload::Sync(SyncMsg::BarrierArrive),
                        now,
                    );
                    None
                }
                Op::LockAcquire(lock) => {
                    let home = self.lock_home(lock);
                    self.send_payload(n, home, Payload::Sync(SyncMsg::LockReq(lock)), now);
                    None
                }
                Op::LockRelease(lock) => {
                    let home = self.lock_home(lock);
                    self.send_payload(n, home, Payload::Sync(SyncMsg::LockRel(lock)), now);
                    // Fire-and-forget: the processor continues once the
                    // release is handed to the CMMU.
                    Some(now + Cycle(4))
                }
                Op::Finish => {
                    self.node_mut(n).done = true;
                    self.finished += 1;
                    self.finish_time = self.finish_time.max(now);
                    // The barrier master must learn this node will
                    // never arrive at another barrier.
                    self.send_payload(
                        n,
                        NodeId::from_index(0),
                        Payload::Sync(SyncMsg::NodeDone),
                        now,
                    );
                    None
                }
                Op::Read(addr) => {
                    let penalty = self.ifetch(cx, n, 1, now);
                    let block = addr.block(cx.cfg.cache.line_bytes);
                    let node = self.node_mut(n);
                    match node.cache.read(block) {
                        Access::Hit => {
                            node.stats.hits += 1;
                            let t = now + Cycle(cx.cfg.proc.hit + penalty);
                            Some(self.finish_access(cx, n, addr, false, None, 0, false, t))
                        }
                        Access::VictimHit => {
                            node.stats.hits += 1;
                            let t = now + Cycle(cx.cfg.proc.hit + cx.cfg.proc.victim_hit + penalty);
                            Some(self.finish_access(cx, n, addr, false, None, 0, false, t))
                        }
                        Access::UpgradeMiss | Access::Miss { .. } => {
                            self.start_miss(cx, n, addr, false, 0, None, now + Cycle(penalty))
                        }
                    }
                }
                Op::Write(addr, v) => self.write_like(cx, n, addr, v, None, now),
                Op::Rmw(addr, rmw) => self.write_like(cx, n, addr, 0, Some(rmw), now),
            };
            let Some(t) = resume else {
                return;
            };
            // Chain inline when the resume is provably next; otherwise
            // schedule it under the key just allocated (the key is
            // consumed either way, keeping the counter — and with it
            // every later key — partition-independent). A pending
            // remote write tagged at or below the resume blocks
            // chaining: it must be applied between the two events, so
            // the resume goes through the window loop.
            let key = self.next_key(n);
            if self.slot.is_none()
                && t < self.t_end
                && (t, key) < self.rw_gate
                && self.queue.peek().is_none_or(|(pt, pk)| (t, key) < (pt, pk))
            {
                self.queue.advance_to(t);
                self.executed += 1;
                assert!(
                    self.executed < self.max_events,
                    "event limit exceeded: probable livelock at {t}"
                );
                self.cur_time = t;
                self.cur_key = key;
                now = t;
                continue;
            }
            self.post_keyed(t, key, Ev::Resume(n));
            return;
        }
    }

    /// Executes a write-flavoured op, returning the synchronous resume
    /// time (hits and local fast fills) or `None` when the protocol
    /// takes over.
    fn write_like(
        &mut self,
        cx: &Wctx,
        n: NodeId,
        addr: Addr,
        v: u64,
        rmw: Option<Rmw>,
        now: Cycle,
    ) -> Option<Cycle> {
        let penalty = self.ifetch(cx, n, 1, now);
        let block = addr.block(cx.cfg.cache.line_bytes);
        let node = self.node_mut(n);
        match node.cache.write(block) {
            Access::Hit => {
                node.stats.hits += 1;
                let t = now + Cycle(cx.cfg.proc.hit + penalty);
                Some(self.finish_access(cx, n, addr, true, rmw, v, false, t))
            }
            Access::VictimHit => {
                node.stats.hits += 1;
                let t = now + Cycle(cx.cfg.proc.hit + cx.cfg.proc.victim_hit + penalty);
                Some(self.finish_access(cx, n, addr, true, rmw, v, false, t))
            }
            Access::UpgradeMiss | Access::Miss { .. } => {
                self.start_miss(cx, n, addr, true, v, rmw, now + Cycle(penalty))
            }
        }
    }

    /// Completes a memory operation at time `t`: applies its effect to
    /// shadow memory and returns the time the program resumes. The
    /// caller either chains the next operation inline (see
    /// [`Shard::step_program`]) or posts a `Resume`.
    ///
    /// `squashed` marks a window-of-vulnerability completion (the fill
    /// was invalidated in flight; the access completes with the data
    /// but installs nothing) — the sanitizer's permission check is
    /// skipped for those, since the line legitimately belongs to
    /// someone else by completion time.
    #[must_use]
    #[allow(clippy::too_many_arguments)]
    fn finish_access(
        &mut self,
        cx: &Wctx,
        n: NodeId,
        addr: Addr,
        is_write: bool,
        rmw: Option<Rmw>,
        wvalue: u64,
        squashed: bool,
        t: Cycle,
    ) -> Cycle {
        if !squashed && cx.cfg.check.is_full() {
            self.check_access_permission(cx, n, addr, is_write);
        }
        if is_write {
            self.node_mut(n).stats.writes += 1;
            match rmw {
                Some(r) => {
                    let old = self.mem_load(addr);
                    self.mem_store(addr, r.apply(old));
                    self.node_mut(n).last_value = Some(old);
                }
                None => self.mem_store(addr, wvalue),
            }
        } else {
            self.node_mut(n).stats.reads += 1;
            let v = self.mem_load(addr);
            let node = self.node_mut(n);
            node.last_value = Some(v);
            if let Some(log) = node.read_log.as_mut() {
                log.push((addr, v));
            }
        }
        if let Some(tr) = cx.tracker {
            let block = addr.block(cx.cfg.cache.line_bytes);
            tr.lock()
                .expect("tracker lock poisoned")
                .touch(block.0, n.0, is_write);
        }
        t
    }

    /// Issues a miss. Returns the resume time when the access completes
    /// synchronously (the local fast path), `None` once the protocol
    /// owns the transaction.
    #[allow(clippy::too_many_arguments)]
    fn start_miss(
        &mut self,
        cx: &Wctx,
        n: NodeId,
        addr: Addr,
        is_write: bool,
        wvalue: u64,
        rmw: Option<Rmw>,
        now: Cycle,
    ) -> Option<Cycle> {
        self.node_mut(n).stats.misses += 1;
        let block = addr.block(cx.cfg.cache.line_bytes);
        let home = self.home_of(block);

        // The software-only directory's uniprocessor fast path: local
        // blocks never touched by a remote node fill straight from
        // local DRAM, with no protocol involvement at all (§2.3).
        if home == n && self.node(n).engine.local_fast_path(block) {
            self.node_mut(n).stats.local_fast_fills += 1;
            self.drain_silent_drops(cx, n);
            let wb = if is_write {
                self.registry_fill_exclusive(cx, block, n);
                self.node_mut(n).cache.fill_dirty(block)
            } else {
                self.registry_fill_shared(cx, block, n);
                self.node_mut(n).cache.fill_shared(block)
            };
            self.handle_displacement(cx, n, wb, now);
            let t = now + Cycle(cx.cfg.proc.issue + 10 /* local DRAM */ + cx.cfg.proc.fill);
            return Some(self.finish_access(cx, n, addr, is_write, rmw, wvalue, false, t));
        }

        debug_assert!(
            self.node(n).pending.is_none(),
            "one outstanding miss per node"
        );
        self.node_mut(n).pending = Some(Pending {
            addr,
            is_write,
            wvalue,
            rmw,
            retries: 0,
            squashed: false,
        });
        let msg = if is_write {
            ProtoMsg::WriteReq
        } else {
            ProtoMsg::ReadReq
        };
        self.send(n, home, block, msg, now + Cycle(cx.cfg.proc.issue));
        None
    }

    fn retry(&mut self, cx: &Wctx, n: NodeId, now: Cycle) {
        let Some(p) = self.node(n).pending.as_ref() else {
            return; // satisfied in the meantime
        };
        let block = p.addr.block(cx.cfg.cache.line_bytes);
        let msg = if p.is_write {
            ProtoMsg::WriteReq
        } else {
            ProtoMsg::ReadReq
        };
        let home = self.home_of(block);
        self.send(n, home, block, msg, now);
    }

    // ------------------------------------------------------- network

    /// Sends a protocol message about `block` from `src` at `at`.
    pub(crate) fn send(
        &mut self,
        src: NodeId,
        dst: NodeId,
        block: BlockAddr,
        msg: ProtoMsg,
        at: Cycle,
    ) {
        self.send_payload(src, dst, Payload::Proto(BlockMsg::new(block, msg)), at);
    }

    fn deliver(&mut self, cx: &Wctx, src: NodeId, dst: NodeId, bm: BlockMsg, now: Cycle) {
        let block = bm.block;
        #[cfg(debug_assertions)]
        if std::env::var("LIMITLESS_TRACE_BLOCK").ok().as_deref()
            == Some(&format!("{:#x}", block.0))
        {
            eprintln!("[{now}] {src} -> {dst}: {:?}", bm.msg);
        }
        match bm.msg {
            // ---- home-side protocol events ----
            ProtoMsg::ReadReq => self.home_event(cx, dst, block, DirEvent::Read { from: src }, now),
            ProtoMsg::WriteReq => {
                self.home_event(cx, dst, block, DirEvent::Write { from: src }, now)
            }
            ProtoMsg::InvAck => {
                cx.registry(|r| r.note_inv_ack(block));
                self.home_event(cx, dst, block, DirEvent::InvAck { from: src }, now);
            }
            ProtoMsg::FlushAck { had_data } => self.home_event(
                cx,
                dst,
                block,
                DirEvent::OwnerAck {
                    from: src,
                    had_data,
                    downgrade: false,
                },
                now,
            ),
            ProtoMsg::DowngradeAck { had_data } => self.home_event(
                cx,
                dst,
                block,
                DirEvent::OwnerAck {
                    from: src,
                    had_data,
                    downgrade: true,
                },
                now,
            ),
            ProtoMsg::Wb => self.home_event(cx, dst, block, DirEvent::Writeback { from: src }, now),

            // ---- requester/sharer-side events (CMMU hardware) ----
            ProtoMsg::ReadData => {
                let squashed =
                    self.node(dst).pending.as_ref().is_some_and(|p| {
                        p.squashed && p.addr.block(cx.cfg.cache.line_bytes) == block
                    });
                if !squashed {
                    self.drain_silent_drops(cx, dst);
                    let wb = self.node_mut(dst).cache.fill_shared(block);
                    self.registry_fill_shared(cx, block, dst);
                    self.handle_displacement(cx, dst, wb, now);
                }
                self.complete_pending(cx, dst, now);
            }
            ProtoMsg::WriteData => {
                self.drain_silent_drops(cx, dst);
                // The line may still sit Shared in our cache if the
                // grant raced nothing at all; normally it is absent.
                let wb = match self.node(dst).cache.state_of(block) {
                    Some(_) => {
                        self.node_mut(dst).cache.upgrade(block);
                        None
                    }
                    None => self.node_mut(dst).cache.fill_dirty(block),
                };
                self.registry_fill_exclusive(cx, block, dst);
                self.handle_displacement(cx, dst, wb, now);
                self.complete_pending(cx, dst, now);
            }
            ProtoMsg::UpgradeAck => {
                self.drain_silent_drops(cx, dst);
                if !self.node_mut(dst).cache.upgrade(block) {
                    // The shared line was displaced while the upgrade
                    // was in flight (e.g. by instruction thrashing).
                    // In Alewife the transaction store pins the line
                    // for the duration of the transaction, so the
                    // grant is still good: install it as a fresh
                    // exclusive copy. (Memory is current — the line
                    // was only ever shared.) Re-requesting instead
                    // would leave the directory believing we own a
                    // line we never held, wedging later owner fetches.
                    self.node_mut(dst).stats.upgrade_races += 1;
                    let wb = self.node_mut(dst).cache.fill_dirty(block);
                    self.handle_displacement(cx, dst, wb, now);
                }
                self.registry_fill_exclusive(cx, block, dst);
                self.complete_pending(cx, dst, now);
            }
            ProtoMsg::Busy => {
                self.node_mut(dst).stats.busy_retries += 1;
                let Some(p) = self.node_mut(dst).pending.as_mut() else {
                    return;
                };
                p.retries += 1;
                let retries = p.retries;
                let addr = p.addr;
                if retries >= CHECKED_RETRY_LIMIT && cx.checking() {
                    self.livelock_panic(cx, dst, addr, retries);
                }
                let backoff = cx.cfg.proc.busy_backoff * u64::from(retries.min(8));
                self.post(dst, now + Cycle(backoff), Ev::Retry(dst));
            }
            ProtoMsg::Inv => {
                self.node_mut(dst).cache.invalidate(block);
                cx.registry(|r| r.drop_copy(block, dst));
                // Acknowledge regardless of presence (the copy may have
                // been evicted silently).
                self.send(dst, src, block, ProtoMsg::InvAck, now + Cycle(2));
            }
            ProtoMsg::Flush => {
                let had = self.node_mut(dst).cache.invalidate(block).is_some();
                cx.registry(|r| r.drop_copy(block, dst));
                self.send(
                    dst,
                    src,
                    block,
                    ProtoMsg::FlushAck { had_data: had },
                    now + Cycle(2),
                );
            }
            ProtoMsg::Downgrade => {
                let had = self.node_mut(dst).cache.downgrade(block);
                if had {
                    cx.registry(|r| r.downgrade(block, dst));
                }
                self.send(
                    dst,
                    src,
                    block,
                    ProtoMsg::DowngradeAck { had_data: had },
                    now + Cycle(2),
                );
            }
        }
    }

    fn complete_pending(&mut self, cx: &Wctx, n: NodeId, now: Cycle) {
        let Some(p) = self.node_mut(n).pending.take() else {
            return; // duplicate grant (e.g. after an upgrade race)
        };
        let t = now + Cycle(cx.cfg.proc.fill);
        let t = self.finish_access(cx, n, p.addr, p.is_write, p.rmw, p.wvalue, p.squashed, t);
        // Chain straight into program stepping when the resume is
        // provably this lane's next event (the common case for a solo
        // in-flight miss); `step_program` keeps chaining from there.
        // Otherwise go through the normal dispatch.
        let key = self.next_key(n);
        if self.slot.is_none()
            && t < self.t_end
            && (t, key) < self.rw_gate
            && self.queue.peek().is_none_or(|(pt, pk)| (t, key) < (pt, pk))
        {
            self.queue.advance_to(t);
            self.executed += 1;
            self.cur_time = t;
            self.cur_key = key;
            self.step_program(cx, n, t);
        } else {
            self.post_keyed(t, key, Ev::Resume(n));
        }
    }

    /// A fill displaced a dirty block out of the victim path: write it
    /// back to its home.
    fn handle_displacement(&mut self, cx: &Wctx, n: NodeId, wb: Option<BlockAddr>, now: Cycle) {
        if let Some(victim) = wb {
            cx.registry(|r| r.drop_copy(victim, n));
            let home = self.home_of(victim);
            self.send(n, home, victim, ProtoMsg::Wb, now);
        }
    }

    fn registry_fill_shared(&mut self, cx: &Wctx, block: BlockAddr, n: NodeId) {
        cx.registry(|r| r.fill_shared(block, n));
    }

    fn registry_fill_exclusive(&mut self, cx: &Wctx, block: BlockAddr, n: NodeId) {
        cx.registry(|r| r.fill_exclusive(block, n));
    }

    /// Streams `blocks` instruction blocks through the cache, returning
    /// the total miss penalty in cycles.
    fn ifetch(&mut self, cx: &Wctx, n: NodeId, blocks: u64, now: Cycle) -> u64 {
        if cx.cfg.perfect_ifetch {
            return 0;
        }
        let Some(mut fp) = self.node(n).footprint else {
            return 0;
        };
        let mut penalty = 0;
        for _ in 0..blocks.min(fp.blocks()) {
            let b = fp.next_block();
            let (miss, wb) = self.node_mut(n).cache.ifetch(b);
            if miss {
                penalty += cx.cfg.proc.ifetch_miss;
            }
            self.handle_displacement(cx, n, wb, now);
        }
        self.node_mut(n).footprint = Some(fp);
        penalty
    }
}
