//! The event loop, program stepping and the requester-side protocol:
//! miss issue, fills, BUSY retries and network delivery.

use std::time::Instant;

use limitless_cache::{Access, LineState, INSTR_BLOCK_BASE};
use limitless_core::{BlockMsg, DirEvent, ProtoMsg};
use limitless_sim::{Addr, BlockAddr, Cycle, NodeId};

use crate::machine::{Ev, Machine, Pending};
use crate::program::{Op, Rmw};
use crate::stats::RunReport;

/// Hard ceiling on simulation events — a drained queue that never
/// empties indicates livelock, which is a bug this backstop surfaces.
const MAX_EVENTS: u64 = 4_000_000_000;

/// With the sanitizer on, a requester bouncing off BUSY this many
/// times without completing is diagnosed as a livelock: the run panics
/// with the home directory's event history instead of spinning to the
/// event-limit backstop.
const CHECKED_RETRY_LIMIT: u32 = 10_000;

impl Machine {
    /// Runs the machine until every program has finished and all
    /// protocol traffic has drained. Returns the measurements.
    ///
    /// # Panics
    ///
    /// Panics if no programs were loaded, if the event limit is
    /// exceeded (livelock backstop), or — with coherence checking
    /// enabled — on a protocol invariant violation.
    pub fn run(&mut self) -> RunReport {
        assert!(self.loaded, "load programs before running");
        let start = Instant::now();
        for i in 0..self.nodes.len() {
            self.queue
                .schedule(Cycle::ZERO, Ev::Resume(NodeId::from_index(i)));
        }
        let max_events = std::env::var("LIMITLESS_MAX_EVENTS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(MAX_EVENTS);
        loop {
            // The inline slot holds the provably next event (see
            // `post`): take it without a queue round trip, or fall
            // back to popping.
            let (now, ev) = if let Some((t, ev)) = self.pending_inline.take() {
                self.queue.advance_to(t);
                (t, ev)
            } else if let Some(next) = self.queue.pop() {
                next
            } else {
                break;
            };
            assert!(
                self.queue.processed() < max_events,
                "event limit exceeded: probable livelock at {now}"
            );
            match ev {
                Ev::Resume(n) => self.step_program(n, now),
                Ev::Deliver { src, dst, bm } => self.deliver(src, dst, bm, now),
                Ev::Retry(n) => self.retry(n, now),
                Ev::BarrierRelease(generation) => self.release_barrier(generation, now),
                Ev::LockGrant(lock, holder) => self.grant_lock(lock, holder, now),
            }
        }
        assert_eq!(
            self.finished,
            self.nodes.len(),
            "simulation drained with unfinished programs (deadlock?)"
        );
        if self.registry.is_some() {
            self.check_quiesce();
        }
        self.collect_report(start.elapsed().as_secs_f64())
    }

    // ------------------------------------------------------ sanitizer

    /// Forwards silently dropped clean lines (direct-mapped conflict
    /// evictions of `Shared` copies, which send no message) from node
    /// `i`'s cache mirror to the registry. No-op when checking is off.
    ///
    /// Drops may sit in the mirror for arbitrary stretches of the run;
    /// the one ordering that matters is that a node's mirror is drained
    /// **before** the registry gains a copy for that node, so a stale
    /// pending drop of block `B` cannot delete a fresh registration of
    /// `B`. Hence the call sites: immediately ahead of every
    /// `registry_fill_*` (the cold miss paths) and at the start of the
    /// quiesce audit — never on the hit path.
    ///
    /// The gate is inline (one discriminant load and a predicted branch
    /// when checking is off); the drain loop itself stays outlined and
    /// cold.
    #[inline]
    fn drain_silent_drops(&mut self, i: usize) {
        if self.registry.is_some() {
            self.drain_silent_drops_slow(i);
        }
    }

    #[cold]
    fn drain_silent_drops_slow(&mut self, i: usize) {
        while let Some(b) = self.nodes[i].cache.pop_dropped() {
            if b.0 < INSTR_BLOCK_BASE {
                if let Some(r) = self.registry.as_mut() {
                    r.drop_copy(b, NodeId::from_index(i));
                }
            }
        }
    }

    /// The quiesce audit: with all programs finished and all traffic
    /// drained, the caches, the copy registry, every home directory
    /// and the sync runtime must agree exactly.
    ///
    /// # Panics
    ///
    /// Panics listing every discrepancy found.
    fn check_quiesce(&mut self) {
        for i in 0..self.nodes.len() {
            self.drain_silent_drops(i);
        }
        let Some(r) = self.registry.as_ref() else {
            return;
        };
        let mut problems: Vec<String> = Vec::new();
        // Every cached copy must be registered with the right
        // permission.
        for (i, node) in self.nodes.iter().enumerate() {
            let n = NodeId::from_index(i);
            for (b, state) in node.cache.resident_blocks() {
                if b.0 >= INSTR_BLOCK_BASE {
                    continue;
                }
                match state {
                    LineState::Dirty if r.owner(b) != Some(n) => problems.push(format!(
                        "node {n} holds {b} dirty but the registry owner is {:?}",
                        r.owner(b)
                    )),
                    LineState::Shared if !r.is_sharer(b, n) => problems.push(format!(
                        "node {n} holds {b} shared but is not a registered sharer"
                    )),
                    _ => {}
                }
            }
        }
        // Every registered copy must be cached, and the block's home
        // directory must still track it (the directory may track a
        // superset — silent evictions leave stale pointers — but never
        // less than the true copy set).
        for (b, owner, sharers) in r.iter() {
            let home = self.home_of(b);
            let engine = &self.nodes[home.index()].engine;
            if let Some(o) = owner {
                if self.nodes[o.index()].cache.state_anywhere(b) != Some(LineState::Dirty) {
                    problems.push(format!(
                        "registry says {o} owns {b} but its cache disagrees"
                    ));
                }
                let dir_ok = if engine.local_fast_path(b) {
                    o == home
                } else {
                    engine.dir_owner(b) == Some(o)
                };
                if !dir_ok {
                    problems.push(format!(
                        "registry says {o} owns {b} but home {home}'s directory says {:?}",
                        engine.dir_owner(b)
                    ));
                }
            }
            for &s in sharers {
                if self.nodes[s.index()].cache.state_anywhere(b) != Some(LineState::Shared) {
                    problems.push(format!(
                        "registry says {s} shares {b} but its cache disagrees"
                    ));
                }
                if !engine.dir_tracks(b, s) {
                    problems.push(format!(
                        "registry says {s} shares {b} but home {home}'s directory does not track it"
                    ));
                }
            }
        }
        // Every directory entry must have settled into a stable,
        // internally consistent state.
        for (i, node) in self.nodes.iter().enumerate() {
            for v in node.engine.quiesce_violations() {
                problems.push(format!("home {}: {v}", NodeId::from_index(i)));
            }
        }
        // Every invalidation must have been acknowledged exactly once.
        for (b, bal) in r.unbalanced_invs() {
            problems.push(format!("{b}: {bal} invalidation(s) never acknowledged"));
        }
        // Deferred (non-fatal under Basic) violations.
        problems.extend(r.violations().iter().cloned());
        // The sync runtime must have drained.
        for (lock, st) in self.locks.iter() {
            if let Some(h) = st.holder {
                problems.push(format!("lock {lock} still held by {h} at quiesce"));
            }
            if !st.waiters.is_empty() {
                problems.push(format!(
                    "lock {lock} still has {} waiter(s) at quiesce",
                    st.waiters.len()
                ));
            }
        }
        if !self.barrier_waiting.is_empty() {
            problems.push(format!(
                "{} node(s) still waiting at a barrier at quiesce",
                self.barrier_waiting.len()
            ));
        }
        assert!(
            problems.is_empty(),
            "coherence sanitizer: quiesce audit failed with {} problem(s):\n  {}",
            problems.len(),
            problems.join("\n  ")
        );
    }

    // ----------------------------------------------------- dispatch

    /// Schedules `ev` at time `t`, short-circuiting the event queue
    /// when `ev` is provably the next event the run loop will process.
    ///
    /// The fast lane fires when nothing is pending at or before `t`:
    /// the event parks in `pending_inline` and the run loop hands it
    /// straight to its handler — no heap/bucket traffic, no seq
    /// assignment. This collapses the schedule→pop round trip for
    /// cache-hit chains, zero-delay resumes and solo in-flight
    /// messages, which dominate quiescent phases.
    ///
    /// Ordering safety: the slot is only filled when `t` is strictly
    /// earlier than every queued event, and any later `post` flushes
    /// the slot to the queue *before* scheduling — the queue is never
    /// mutated while the slot is occupied, so the flushed event's
    /// fresh sequence number cannot overtake a same-time event that
    /// was scheduled after it. The simulation's `(time, seq)` total
    /// order is exactly that of a queue-only run, which the golden
    /// cycle-count tests pin down.
    pub(crate) fn post(&mut self, t: Cycle, ev: Ev) {
        if let Some((it, iev)) = self.pending_inline.take() {
            self.queue.schedule(it, iev);
        }
        match self.queue.peek_time() {
            Some(pt) if pt <= t => self.queue.schedule(t, ev),
            _ => self.pending_inline = Some((t, ev)),
        }
    }

    // ------------------------------------------------------ programs

    /// Steps `n`'s program, chaining consecutive operations inline:
    /// after a cache hit, a compute phase or a local fast fill, if the
    /// resume moment is provably the next event in the whole machine
    /// (nothing queued at or before it, inline slot empty), the loop
    /// advances the clock and executes the next operation directly —
    /// no `Resume` event is built, scheduled, popped or dispatched.
    /// `advance_to` counts each chained step as one processed event, so
    /// event counts (and the total order) are exactly those of a
    /// queue-only run.
    fn step_program(&mut self, n: NodeId, mut now: Cycle) {
        let i = n.index();
        loop {
            if self.nodes[i].done {
                return;
            }
            // Protocol handlers steal processor cycles: user code
            // resumes only when the handler (and any watchdog grace)
            // completes.
            let busy = self.nodes[i].trap_busy_until;
            if busy > now {
                self.post(busy, Ev::Resume(n));
                return;
            }
            self.nodes[i].trap_accum = 0; // user code made progress

            let last = self.nodes[i].last_value.take();
            let op = self.nodes[i].program.next(n, last);
            // The time this node's program resumes, when that is known
            // synchronously; `None` means the operation handed control
            // to the protocol or sync machinery, which resumes the
            // program itself.
            let resume = match op {
                Op::Compute(c) => {
                    let instr_blocks = (c / 8).max(1);
                    let penalty = self.ifetch(i, instr_blocks, now);
                    Some(now + Cycle(c) + Cycle(penalty))
                }
                Op::Barrier => {
                    self.barrier_wait(n, now);
                    None
                }
                Op::LockAcquire(lock) => {
                    self.lock_acquire(lock, n, now);
                    None
                }
                Op::LockRelease(lock) => {
                    self.lock_release(lock, n, now);
                    None
                }
                Op::Finish => {
                    self.nodes[i].done = true;
                    self.finished += 1;
                    self.finish_time = self.finish_time.max(now);
                    // A finishing node may complete the barrier for
                    // the rest.
                    self.check_barrier(now);
                    None
                }
                Op::Read(addr) => {
                    let penalty = self.ifetch(i, 1, now);
                    let block = addr.block(self.cfg.cache.line_bytes);
                    match self.nodes[i].cache.read(block) {
                        Access::Hit => {
                            self.stats.hits += 1;
                            let t = now + Cycle(self.cfg.proc.hit + penalty);
                            Some(self.finish_access(n, addr, false, None, 0, false, t))
                        }
                        Access::VictimHit => {
                            self.stats.hits += 1;
                            let t =
                                now + Cycle(self.cfg.proc.hit + self.cfg.proc.victim_hit + penalty);
                            Some(self.finish_access(n, addr, false, None, 0, false, t))
                        }
                        Access::UpgradeMiss | Access::Miss { .. } => {
                            self.start_miss(n, addr, false, 0, None, now + Cycle(penalty))
                        }
                    }
                }
                Op::Write(addr, v) => self.write_like(n, addr, v, None, now),
                Op::Rmw(addr, rmw) => self.write_like(n, addr, 0, Some(rmw), now),
            };
            let Some(t) = resume else {
                return;
            };
            // Chain inline when the resume is provably next; otherwise
            // fall back to `post`, which applies the same test for its
            // single-event fast lane.
            if self.pending_inline.is_none() && self.queue.peek_time().is_none_or(|pt| pt > t) {
                self.queue.advance_to(t);
                now = t;
                continue;
            }
            self.post(t, Ev::Resume(n));
            return;
        }
    }

    /// Executes a write-flavoured op, returning the synchronous resume
    /// time (hits and local fast fills) or `None` when the protocol
    /// takes over.
    fn write_like(
        &mut self,
        n: NodeId,
        addr: Addr,
        v: u64,
        rmw: Option<Rmw>,
        now: Cycle,
    ) -> Option<Cycle> {
        let i = n.index();
        let penalty = self.ifetch(i, 1, now);
        let block = addr.block(self.cfg.cache.line_bytes);
        match self.nodes[i].cache.write(block) {
            Access::Hit => {
                self.stats.hits += 1;
                let t = now + Cycle(self.cfg.proc.hit + penalty);
                Some(self.finish_access(n, addr, true, rmw, v, false, t))
            }
            Access::VictimHit => {
                self.stats.hits += 1;
                let t = now + Cycle(self.cfg.proc.hit + self.cfg.proc.victim_hit + penalty);
                Some(self.finish_access(n, addr, true, rmw, v, false, t))
            }
            Access::UpgradeMiss | Access::Miss { .. } => {
                self.start_miss(n, addr, true, v, rmw, now + Cycle(penalty))
            }
        }
    }

    /// Completes a memory operation at time `t`: applies its effect to
    /// shadow memory and returns the time the program resumes. The
    /// caller either chains the next operation inline (see
    /// [`Machine::step_program`]) or posts a `Resume`.
    ///
    /// `squashed` marks a window-of-vulnerability completion (the fill
    /// was invalidated in flight; the access completes with the data
    /// but installs nothing) — the sanitizer's permission check is
    /// skipped for those, since the line legitimately belongs to
    /// someone else by completion time.
    #[must_use]
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn finish_access(
        &mut self,
        n: NodeId,
        addr: Addr,
        is_write: bool,
        rmw: Option<Rmw>,
        wvalue: u64,
        squashed: bool,
        t: Cycle,
    ) -> Cycle {
        let i = n.index();
        if !squashed && self.cfg.check.is_full() {
            self.check_access_permission(n, addr, is_write);
        }
        if is_write {
            self.stats.writes += 1;
            let slot = self.mem.entry(addr);
            match rmw {
                Some(r) => {
                    let old = *slot;
                    *slot = r.apply(old);
                    self.nodes[i].last_value = Some(old);
                }
                None => {
                    *slot = wvalue;
                }
            }
        } else {
            self.stats.reads += 1;
            let v = self.mem.get(addr).copied().unwrap_or(0);
            self.nodes[i].last_value = Some(v);
            if let Some(log) = self.read_log.as_mut() {
                log[i].push((addr, v));
            }
        }
        if let Some(tr) = self.tracker.as_mut() {
            let block = addr.block(self.cfg.cache.line_bytes);
            tr.touch(block.0, n.0, is_write);
        }
        t
    }

    /// Bounded-retry progress violated: diagnose the livelock with the
    /// home directory's event history instead of spinning to the
    /// event-limit backstop.
    #[cold]
    fn livelock_panic(&self, dst: NodeId, addr: Addr, retries: u32) -> ! {
        let b = addr.block(self.cfg.cache.line_bytes);
        let home = self.home_of(b);
        panic!(
            "coherence sanitizer: node {dst} bounced {retries} times \
             requesting {b} — bounded-retry progress violated (livelock)\n{}",
            self.nodes[home.index()].engine.history_dump(b)
        );
    }

    /// The `CheckLevel::Full` freshness check: the simulator keeps one
    /// shadow memory, so a stale *value* is unobservable — instead a
    /// completing access must hold the permission the registry implies.
    #[cold]
    fn check_access_permission(&self, n: NodeId, addr: Addr, is_write: bool) {
        let Some(r) = self.registry.as_ref() else {
            return;
        };
        let block = addr.block(self.cfg.cache.line_bytes);
        let owner = r.owner(block);
        if is_write {
            assert!(
                owner == Some(n),
                "coherence sanitizer: node {n} completed a write to {addr} ({block}) \
                 without exclusive ownership (registry owner: {owner:?})"
            );
        } else {
            assert!(
                owner.is_none() || owner == Some(n),
                "coherence sanitizer: node {n} completed a read of {addr} ({block}) \
                 while {owner:?} holds it exclusively"
            );
        }
    }

    /// Issues a miss. Returns the resume time when the access completes
    /// synchronously (the local fast path), `None` once the protocol
    /// owns the transaction.
    fn start_miss(
        &mut self,
        n: NodeId,
        addr: Addr,
        is_write: bool,
        wvalue: u64,
        rmw: Option<Rmw>,
        now: Cycle,
    ) -> Option<Cycle> {
        self.stats.misses += 1;
        let i = n.index();
        let block = addr.block(self.cfg.cache.line_bytes);
        let home = self.home_of(block);

        // The software-only directory's uniprocessor fast path: local
        // blocks never touched by a remote node fill straight from
        // local DRAM, with no protocol involvement at all (§2.3).
        if home == n && self.nodes[i].engine.local_fast_path(block) {
            self.stats.local_fast_fills += 1;
            self.drain_silent_drops(i);
            let wb = if is_write {
                self.registry_fill_exclusive(block, n);
                self.nodes[i].cache.fill_dirty(block)
            } else {
                self.registry_fill_shared(block, n);
                self.nodes[i].cache.fill_shared(block)
            };
            self.handle_displacement(n, wb, now);
            let t = now + Cycle(self.cfg.proc.issue + 10 /* local DRAM */ + self.cfg.proc.fill);
            return Some(self.finish_access(n, addr, is_write, rmw, wvalue, false, t));
        }

        debug_assert!(
            self.nodes[i].pending.is_none(),
            "one outstanding miss per node"
        );
        self.nodes[i].pending = Some(Pending {
            addr,
            is_write,
            wvalue,
            rmw,
            retries: 0,
            squashed: false,
        });
        let msg = if is_write {
            ProtoMsg::WriteReq
        } else {
            ProtoMsg::ReadReq
        };
        self.send(n, home, block, msg, now + Cycle(self.cfg.proc.issue));
        None
    }

    fn retry(&mut self, n: NodeId, now: Cycle) {
        let i = n.index();
        let Some(p) = self.nodes[i].pending.as_ref() else {
            return; // satisfied in the meantime
        };
        let block = p.addr.block(self.cfg.cache.line_bytes);
        let msg = if p.is_write {
            ProtoMsg::WriteReq
        } else {
            ProtoMsg::ReadReq
        };
        let home = self.home_of(block);
        self.send(n, home, block, msg, now);
    }

    // ------------------------------------------------------- network

    pub(crate) fn send(
        &mut self,
        src: NodeId,
        dst: NodeId,
        block: BlockAddr,
        msg: ProtoMsg,
        at: Cycle,
    ) {
        // The network owns all delivery timing, including the
        // CMMU-internal loopback FIFO for self-addressed messages.
        let deliver = self.net.send_sized(at, src, dst, msg.flits());
        self.post(
            deliver,
            Ev::Deliver {
                src,
                dst,
                bm: BlockMsg::new(block, msg),
            },
        );
    }

    fn deliver(&mut self, src: NodeId, dst: NodeId, bm: BlockMsg, now: Cycle) {
        let block = bm.block;
        #[cfg(debug_assertions)]
        if std::env::var("LIMITLESS_TRACE_BLOCK").ok().as_deref()
            == Some(&format!("{:#x}", block.0))
        {
            eprintln!("[{now}] {src} -> {dst}: {:?}", bm.msg);
        }
        match bm.msg {
            // ---- home-side protocol events ----
            ProtoMsg::ReadReq => self.home_event(dst, block, DirEvent::Read { from: src }, now),
            ProtoMsg::WriteReq => self.home_event(dst, block, DirEvent::Write { from: src }, now),
            ProtoMsg::InvAck => {
                if let Some(r) = self.registry.as_mut() {
                    r.note_inv_ack(block);
                }
                self.home_event(dst, block, DirEvent::InvAck { from: src }, now);
            }
            ProtoMsg::FlushAck { had_data } => self.home_event(
                dst,
                block,
                DirEvent::OwnerAck {
                    from: src,
                    had_data,
                    downgrade: false,
                },
                now,
            ),
            ProtoMsg::DowngradeAck { had_data } => self.home_event(
                dst,
                block,
                DirEvent::OwnerAck {
                    from: src,
                    had_data,
                    downgrade: true,
                },
                now,
            ),
            ProtoMsg::Wb => self.home_event(dst, block, DirEvent::Writeback { from: src }, now),

            // ---- requester/sharer-side events (CMMU hardware) ----
            ProtoMsg::ReadData => {
                let i = dst.index();
                let squashed = self.nodes[i].pending.as_ref().is_some_and(|p| {
                    p.squashed && p.addr.block(self.cfg.cache.line_bytes) == block
                });
                if !squashed {
                    self.drain_silent_drops(i);
                    let wb = self.nodes[i].cache.fill_shared(block);
                    self.registry_fill_shared(block, dst);
                    self.handle_displacement(dst, wb, now);
                }
                self.complete_pending(dst, now);
            }
            ProtoMsg::WriteData => {
                let i = dst.index();
                self.drain_silent_drops(i);
                // The line may still sit Shared in our cache if the
                // grant raced nothing at all; normally it is absent.
                let wb = match self.nodes[i].cache.state_of(block) {
                    Some(_) => {
                        self.nodes[i].cache.upgrade(block);
                        None
                    }
                    None => self.nodes[i].cache.fill_dirty(block),
                };
                self.registry_fill_exclusive(block, dst);
                self.handle_displacement(dst, wb, now);
                self.complete_pending(dst, now);
            }
            ProtoMsg::UpgradeAck => {
                let i = dst.index();
                self.drain_silent_drops(i);
                if !self.nodes[i].cache.upgrade(block) {
                    // The shared line was displaced while the upgrade
                    // was in flight (e.g. by instruction thrashing).
                    // In Alewife the transaction store pins the line
                    // for the duration of the transaction, so the
                    // grant is still good: install it as a fresh
                    // exclusive copy. (Memory is current — the line
                    // was only ever shared.) Re-requesting instead
                    // would leave the directory believing we own a
                    // line we never held, wedging later owner fetches.
                    self.stats.upgrade_races += 1;
                    let wb = self.nodes[i].cache.fill_dirty(block);
                    self.handle_displacement(dst, wb, now);
                }
                self.registry_fill_exclusive(block, dst);
                self.complete_pending(dst, now);
            }
            ProtoMsg::Busy => {
                let i = dst.index();
                self.stats.busy_retries += 1;
                if let Some(p) = self.nodes[i].pending.as_mut() {
                    p.retries += 1;
                    let retries = p.retries;
                    let addr = p.addr;
                    if retries >= CHECKED_RETRY_LIMIT && self.registry.is_some() {
                        self.livelock_panic(dst, addr, retries);
                    }
                    let backoff = self.cfg.proc.busy_backoff * u64::from(retries.min(8));
                    self.post(now + Cycle(backoff), Ev::Retry(dst));
                }
            }
            ProtoMsg::Inv => {
                let i = dst.index();
                self.nodes[i].cache.invalidate(block);
                if let Some(r) = self.registry.as_mut() {
                    r.drop_copy(block, dst);
                }
                // Acknowledge regardless of presence (the copy may have
                // been evicted silently).
                self.send(dst, src, block, ProtoMsg::InvAck, now + Cycle(2));
            }
            ProtoMsg::Flush => {
                let i = dst.index();
                let had = self.nodes[i].cache.invalidate(block).is_some();
                if let Some(r) = self.registry.as_mut() {
                    r.drop_copy(block, dst);
                }
                self.send(
                    dst,
                    src,
                    block,
                    ProtoMsg::FlushAck { had_data: had },
                    now + Cycle(2),
                );
            }
            ProtoMsg::Downgrade => {
                let i = dst.index();
                let had = self.nodes[i].cache.downgrade(block);
                if had {
                    if let Some(r) = self.registry.as_mut() {
                        r.downgrade(block, dst);
                    }
                }
                self.send(
                    dst,
                    src,
                    block,
                    ProtoMsg::DowngradeAck { had_data: had },
                    now + Cycle(2),
                );
            }
        }
    }

    fn complete_pending(&mut self, n: NodeId, now: Cycle) {
        let i = n.index();
        let Some(p) = self.nodes[i].pending.take() else {
            return; // duplicate grant (e.g. after an upgrade race)
        };
        let t = now + Cycle(self.cfg.proc.fill);
        let t = self.finish_access(n, p.addr, p.is_write, p.rmw, p.wvalue, p.squashed, t);
        // Chain straight into program stepping when the resume is
        // provably the machine's next event (the common case for a
        // solo in-flight miss); `step_program` keeps chaining from
        // there. Otherwise go through the normal dispatch.
        if self.pending_inline.is_none() && self.queue.peek_time().is_none_or(|pt| pt > t) {
            self.queue.advance_to(t);
            self.step_program(n, t);
        } else {
            self.post(t, Ev::Resume(n));
        }
    }

    /// A fill displaced a dirty block out of the victim path: write it
    /// back to its home.
    fn handle_displacement(&mut self, n: NodeId, wb: Option<BlockAddr>, now: Cycle) {
        if let Some(victim) = wb {
            if let Some(r) = self.registry.as_mut() {
                r.drop_copy(victim, n);
            }
            let home = self.home_of(victim);
            self.send(n, home, victim, ProtoMsg::Wb, now);
        }
    }

    fn registry_fill_shared(&mut self, block: BlockAddr, n: NodeId) {
        if let Some(r) = self.registry.as_mut() {
            r.fill_shared(block, n);
        }
    }

    fn registry_fill_exclusive(&mut self, block: BlockAddr, n: NodeId) {
        if let Some(r) = self.registry.as_mut() {
            r.fill_exclusive(block, n);
        }
    }

    /// Streams `blocks` instruction blocks through the cache, returning
    /// the total miss penalty in cycles.
    fn ifetch(&mut self, i: usize, blocks: u64, now: Cycle) -> u64 {
        if self.cfg.perfect_ifetch {
            return 0;
        }
        let Some(mut fp) = self.nodes[i].footprint else {
            return 0;
        };
        let mut penalty = 0;
        for _ in 0..blocks.min(fp.blocks()) {
            let b = fp.next_block();
            let (miss, wb) = self.nodes[i].cache.ifetch(b);
            if miss {
                penalty += self.cfg.proc.ifetch_miss;
            }
            self.handle_displacement(NodeId::from_index(i), wb, now);
        }
        self.nodes[i].footprint = Some(fp);
        penalty
    }
}
