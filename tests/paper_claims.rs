//! The paper's headline quantitative claims, asserted as tests (at
//! reduced scale — see EXPERIMENTS.md for the full-scale numbers).

use limitless::apps::{run_app, App, Aq, Evolve, Scale, Tsp, Water, Worker};
use limitless::core::ProtocolSpec;
use limitless::machine::MachineConfig;

fn cycles(app: &dyn App, nodes: usize, p: ProtocolSpec) -> u64 {
    run_app(
        app,
        MachineConfig::builder()
            .nodes(nodes)
            .protocol(p)
            .victim_cache(true)
            .build(),
    )
    .cycles
    .as_u64()
}

/// "The hybrid architecture with five pointers achieves between 71%
/// and 100% of full-map directory performance."
#[test]
fn five_pointers_achieve_at_least_71_percent_of_full_map() {
    let apps: Vec<Box<dyn App>> = vec![
        Box::new(Tsp::new(Scale::Quick)),
        Box::new(Aq::new(Scale::Quick)),
        Box::new(Evolve::new(Scale::Quick)),
        Box::new(Water::new(Scale::Quick)),
    ];
    for app in &apps {
        let full = cycles(app.as_ref(), 16, ProtocolSpec::full_map());
        let five = cycles(app.as_ref(), 16, ProtocolSpec::limitless(5));
        let ratio = full as f64 / five as f64;
        assert!(
            ratio >= 0.71,
            "{}: H5 at {:.0}% of full-map (paper floor: 71%)",
            app.name(),
            ratio * 100.0
        );
    }
}

/// "One-pointer systems reach between 42% and 100% of full-map
/// performance on our parallel benchmarks." (Asserted on the
/// applications where our reproduction meets the bound; SMGRID's
/// deviation is documented in EXPERIMENTS.md.)
#[test]
fn one_pointer_reaches_at_least_42_percent_on_most_apps() {
    let apps: Vec<Box<dyn App>> = vec![
        Box::new(Tsp::new(Scale::Quick)),
        Box::new(Aq::new(Scale::Quick)),
        Box::new(Evolve::new(Scale::Quick)),
        Box::new(Water::new(Scale::Quick)),
    ];
    for app in &apps {
        let full = cycles(app.as_ref(), 16, ProtocolSpec::full_map());
        let one = cycles(app.as_ref(), 16, ProtocolSpec::one_ptr_ack());
        let ratio = full as f64 / one as f64;
        assert!(
            ratio >= 0.42,
            "{}: H1 at {:.0}% of full-map (paper floor: 42%)",
            app.name(),
            ratio * 100.0
        );
    }
}

/// "A software-only directory architecture with no hardware pointers
/// has lower performance but minimal cost" — and on favourable
/// applications still achieves a usable fraction of full-map.
#[test]
fn zero_pointer_works_and_is_slowest() {
    let app = Aq::new(Scale::Quick);
    let full = cycles(&app, 16, ProtocolSpec::full_map());
    let five = cycles(&app, 16, ProtocolSpec::limitless(5));
    let zero = cycles(&app, 16, ProtocolSpec::zero_ptr());
    assert!(zero >= five, "H0 must not beat H5");
    let ratio = full as f64 / zero as f64;
    assert!(
        ratio > 0.3,
        "AQ under the software-only directory still runs at a usable \
         fraction of full-map (got {:.0}%)",
        ratio * 100.0
    );
}

/// Figure 2: the more hardware pointers, the better — endpoints of the
/// spectrum ordered correctly on the WORKER stress test.
#[test]
fn worker_spectrum_endpoints_are_ordered() {
    let app = Worker::fig2(8);
    let full = cycles(&app, 16, ProtocolSpec::full_map());
    let five = cycles(&app, 16, ProtocolSpec::limitless(5));
    let one = cycles(&app, 16, ProtocolSpec::one_ptr_lack());
    let zero = cycles(&app, 16, ProtocolSpec::zero_ptr());
    assert!(full <= five);
    assert!(five <= one);
    assert!(one <= zero);
}

/// Figure 2: `Dir_nH_5S_{NB}` is *exactly* full-map while worker sets
/// fit the hardware directory.
#[test]
fn h5_is_exactly_full_map_for_small_worker_sets() {
    let app = Worker::fig2(4);
    let full = cycles(&app, 16, ProtocolSpec::full_map());
    let five = cycles(&app, 16, ProtocolSpec::limitless(5));
    assert_eq!(full, five, "worker sets of 4 fit in five pointers");
}

/// Figure 3: instruction/data thrashing hurts the software-extended
/// protocols most, and both remedies (perfect ifetch, victim cache)
/// restore them to full-map-equivalent performance.
#[test]
fn tsp_thrash_and_remedies() {
    let app = Tsp::new(Scale::Quick);
    let mk = |p: ProtocolSpec, victim: bool, perfect: bool| {
        run_app(
            &app,
            MachineConfig::builder()
                .nodes(16)
                .protocol(p)
                .victim_cache(victim)
                .perfect_ifetch(perfect)
                .build(),
        )
        .cycles
        .as_u64()
    };
    let h1_base = mk(ProtocolSpec::one_ptr_ack(), false, false);
    let full_base = mk(ProtocolSpec::full_map(), false, false);
    let h5_victim = mk(ProtocolSpec::limitless(5), true, false);
    let h5_perfect = mk(ProtocolSpec::limitless(5), false, true);
    let full_victim = mk(ProtocolSpec::full_map(), true, false);
    let h1_victim = mk(ProtocolSpec::one_ptr_ack(), true, false);

    // Base config: the software-extended protocols trail full-map
    // (thrash-driven trap storms at the hot blocks' homes). At this
    // reduced node count the gap is clearest for the one-pointer
    // protocol; at 64 nodes it widens across the spectrum (see
    // EXPERIMENTS.md).
    assert!(
        h1_base as f64 > full_base as f64 * 1.3,
        "thrash must hurt H1: {h1_base} vs {full_base}"
    );
    // Both remedies bring H5 within 15% of the repaired full-map.
    assert!((h5_victim as f64) < full_victim as f64 * 1.15);
    assert!((h5_perfect as f64) < full_victim as f64 * 1.15);
    // And the victim cache repairs H1 substantially.
    assert!((h1_victim as f64) < h1_base as f64);
}

/// The watchdog exists for the protocols that trap on every
/// acknowledgment, and never fires elsewhere.
#[test]
fn watchdog_only_arms_for_ack_protocols() {
    let app = Worker::fig2(12);
    let fires = |p: ProtocolSpec| {
        run_app(
            &app,
            MachineConfig::builder()
                .nodes(16)
                .protocol(p)
                .watchdog(limitless::machine::WatchdogConfig {
                    window: 500,
                    grace: 250,
                })
                .build(),
        )
        .stats
        .watchdog_fires
    };
    assert_eq!(fires(ProtocolSpec::limitless(5)), 0);
    assert_eq!(fires(ProtocolSpec::full_map()), 0);
    // The ACK-mode protocol under a hot widely-shared workload leans
    // on the watchdog.
    assert!(fires(ProtocolSpec::one_ptr_ack()) > 0);
}
