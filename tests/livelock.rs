//! Regression test for the upgrade-race hang: TSP's hot-block layout
//! under the software-only directory once wedged a read transaction
//! forever (see `Machine`'s window-of-vulnerability handling).
//!
//! Promoted from a manual example into a hard-budget CI gate: the run
//! must terminate, and it must do so within a generous-but-finite
//! cycle/event budget so a reintroduced livelock fails fast instead of
//! spinning to the 4-billion-event backstop. The coherence sanitizer
//! runs fully armed, so a hang in the bounded-retry class is diagnosed
//! with the home directory's event history rather than a timeout.
//!
//! This is the only test in this file: it owns its process and may set
//! `LIMITLESS_MAX_EVENTS` safely.

use limitless_apps::{run_app, Scale, Tsp};
use limitless_core::{CheckLevel, ProtocolSpec};
use limitless_machine::MachineConfig;

/// Observed healthy run: ~358k cycles, ~16k events. Budgets leave more
/// than 10x headroom for timing-model drift while still catching any
/// runaway retry loop quickly.
const CYCLE_BUDGET: u64 = 5_000_000;
const EVENT_BUDGET: u64 = 2_000_000;

#[test]
fn tsp_zero_ptr_terminates_within_budget() {
    // Backstop below the budget assertion: if the run livelocks, the
    // machine panics at 2M events instead of 4B.
    std::env::set_var("LIMITLESS_MAX_EVENTS", EVENT_BUDGET.to_string());
    let app = Tsp::new(Scale::Quick);
    let r = run_app(
        &app,
        MachineConfig::builder()
            .nodes(16)
            .protocol(ProtocolSpec::zero_ptr())
            .check_level(CheckLevel::Full)
            .build(),
    );
    assert!(
        r.cycles.as_u64() < CYCLE_BUDGET,
        "TSP under Dir_nH_0 took {} cycles (budget {CYCLE_BUDGET}): livelock regression?",
        r.cycles.as_u64()
    );
    assert!(
        r.events < EVENT_BUDGET,
        "TSP under Dir_nH_0 processed {} events (budget {EVENT_BUDGET}): livelock regression?",
        r.events
    );
}
