//! Cross-crate integration: every application runs on every protocol
//! in the spectrum with the coherence checker enabled, and produces
//! its verified algorithmic result.

use limitless::apps::{run_app, App, Aq, Evolve, Mp3d, Smgrid, Tsp, Water, Worker};
use limitless::core::ProtocolSpec;
use limitless::machine::MachineConfig;

fn spectrum() -> Vec<ProtocolSpec> {
    vec![
        ProtocolSpec::zero_ptr(),
        ProtocolSpec::one_ptr_ack(),
        ProtocolSpec::one_ptr_lack(),
        ProtocolSpec::one_ptr_hw(),
        ProtocolSpec::limitless(2),
        ProtocolSpec::limitless(5),
        ProtocolSpec::dir1_sw(),
        ProtocolSpec::full_map(),
    ]
}

fn tiny_apps() -> Vec<Box<dyn App>> {
    vec![
        Box::new(Tsp {
            cities: 7,
            seed: 0x7591,
            code_blocks: 48,
        }),
        Box::new(Aq {
            tolerance: 0.2,
            split_depth: 2,
        }),
        Box::new(Smgrid {
            side: 17,
            levels: 2,
            sweeps: 2,
            cycles: 1,
        }),
        Box::new(Evolve {
            dims: 6,
            total_walks: 16,
            seed: 0xEE01,
        }),
        Box::new(Mp3d {
            particles: 96,
            cells_side: 4,
            steps: 2,
            seed: 0x3D,
        }),
        Box::new(Water {
            molecules: 8,
            steps: 2,
            seed: 7,
        }),
        Box::new(Worker {
            set_size: 5,
            blocks_per_node: 1,
            iterations: 3,
        }),
    ]
}

#[test]
fn every_app_runs_verified_on_every_protocol() {
    for app in tiny_apps() {
        for p in spectrum() {
            let cfg = MachineConfig::builder()
                .nodes(8)
                .protocol(p)
                .victim_cache(true)
                .check_coherence(true)
                .build();
            // run_app asserts each app's expected_results internally
            // (tour length, global maximum, particle conservation,
            // molecule positions + energy, worker values).
            let report = run_app(app.as_ref(), cfg);
            assert!(report.cycles.as_u64() > 0, "{} under {p}", app.name());
        }
    }
}

#[test]
fn software_protocols_trap_and_full_map_does_not() {
    let app = Worker {
        set_size: 6,
        blocks_per_node: 1,
        iterations: 4,
    };
    let run = |p: ProtocolSpec| {
        run_app(
            &app,
            MachineConfig::builder()
                .nodes(8)
                .protocol(p)
                .check_coherence(true)
                .build(),
        )
        .stats
        .engine
        .traps
    };
    assert_eq!(run(ProtocolSpec::full_map()), 0);
    assert!(run(ProtocolSpec::limitless(2)) > 0);
    assert!(run(ProtocolSpec::zero_ptr()) > run(ProtocolSpec::limitless(2)));
}

/// The quick-scale golden configuration shared by the regression
/// tests below and `examples/spectrum_cycles.rs` (which recaptures
/// the constants when a deliberate timing-model change lands).
fn golden_cfg(p: ProtocolSpec) -> MachineConfig {
    MachineConfig::builder()
        .nodes(8)
        .protocol(p)
        .victim_cache(true)
        .check_coherence(true)
        .build()
}

/// Golden cycle counts: the simulator is deterministic, so any drift
/// here is a behavioral change in the protocol or timing model — not
/// noise. Refactors (data-structure swaps, module splits) must keep
/// every one of these values bit-identical.
#[test]
fn golden_cycle_counts_worker() {
    let app = Worker {
        set_size: 5,
        blocks_per_node: 1,
        iterations: 3,
    };
    let golden: [u64; 8] = [14111, 8856, 7358, 7382, 6493, 2043, 3820, 2043];
    for (p, want) in spectrum().into_iter().zip(golden) {
        let got = run_app(&app, golden_cfg(p)).cycles.as_u64();
        assert_eq!(got, want, "WORKER cycle count drifted under {p}");
    }
}

#[test]
fn golden_cycle_counts_tsp() {
    let app = Tsp {
        cities: 7,
        seed: 0x7591,
        code_blocks: 48,
    };
    let golden: [u64; 8] = [
        153974, 143776, 143776, 143815, 144026, 143976, 143578, 143578,
    ];
    for (p, want) in spectrum().into_iter().zip(golden) {
        let got = run_app(&app, golden_cfg(p)).cycles.as_u64();
        assert_eq!(got, want, "TSP cycle count drifted under {p}");
    }
}

/// Two runs of the same seed and configuration must agree on *every*
/// observable — cycles, event count, and the full statistics record —
/// not just the headline number.
#[test]
fn same_seed_runs_are_bit_identical() {
    let apps: Vec<Box<dyn App>> = vec![
        Box::new(Worker {
            set_size: 5,
            blocks_per_node: 1,
            iterations: 3,
        }),
        Box::new(Tsp {
            cities: 7,
            seed: 0x7591,
            code_blocks: 48,
        }),
    ];
    for app in &apps {
        for p in [ProtocolSpec::limitless(2), ProtocolSpec::zero_ptr()] {
            let a = run_app(app.as_ref(), golden_cfg(p));
            let b = run_app(app.as_ref(), golden_cfg(p));
            assert_eq!(a.cycles, b.cycles, "{} cycles under {p}", app.name());
            assert_eq!(a.events, b.events, "{} events under {p}", app.name());
            assert_eq!(a.stats, b.stats, "{} stats under {p}", app.name());
        }
    }
}

#[test]
fn handler_implementation_changes_time_not_results() {
    use limitless::core::HandlerImpl;
    let app = Worker {
        set_size: 6,
        blocks_per_node: 1,
        iterations: 4,
    };
    let run = |imp: HandlerImpl| {
        run_app(
            &app,
            MachineConfig::builder()
                .nodes(8)
                .protocol(ProtocolSpec::limitless(2))
                .handler_impl(imp)
                .build(),
        )
        .cycles
        .as_u64()
    };
    let c = run(HandlerImpl::FlexibleC);
    let asm = run(HandlerImpl::TunedAsm);
    assert!(
        c > asm,
        "flexible C handlers ({c}) must cost more than tuned assembly ({asm})"
    );
}
