//! Seeded property test: a random race-free sharing workload, run
//! through the differential oracle against full-map ground truth under
//! every protocol in the Figure 2 spectrum.
//!
//! The workload is barrier-phased with a single writer per word per
//! phase, so every plain read value is deterministic — any divergence
//! from the `Dir_nH_NB S_-` baseline is a protocol bug, not an
//! application race. Widely shared words (readers chosen at random
//! each phase, two words per cache block for false sharing) exercise
//! pointer overflow, software traps, invalidation fan-out and the
//! broadcast paths; a shared RMW counter exercises exclusive-ownership
//! hand-offs. Every cell runs with the coherence sanitizer fully
//! armed (`CheckLevel::Full`).

use limitless_apps::App;
use limitless_bench::check_app;
use limitless_machine::{Op, Program, Rmw, ScriptProgram};
use limitless_sim::{Addr, SplitMix64};

const BASE: u64 = 0x50_0000;
const WORDS: u64 = 48;
const PHASES: usize = 6;
const NODES: usize = 8;

/// The shared RMW accumulator, one block past the word array.
fn counter() -> Addr {
    Addr(BASE + WORDS * 8 + 16)
}

fn word(i: u64) -> Addr {
    Addr(BASE + i * 8)
}

struct RandomSharing {
    seed: u64,
}

impl App for RandomSharing {
    fn name(&self) -> &'static str {
        "RANDOM"
    }

    fn language(&self) -> &'static str {
        "synthetic"
    }

    fn size_description(&self) -> String {
        format!("{WORDS} words x {PHASES} phases, seed {:#x}", self.seed)
    }

    fn programs(&self, nodes: usize) -> Vec<Box<dyn Program>> {
        let mut rng = SplitMix64::new(self.seed);
        let mut scripts: Vec<Vec<Op>> = vec![Vec::new(); nodes];
        for phase in 0..PHASES {
            // Write phase: exactly one writer per word.
            for w in 0..WORDS {
                let writer = rng.next_below(nodes as u64) as usize;
                let value = rng.next_u64();
                scripts[writer].push(Op::Write(word(w), value));
            }
            for s in scripts.iter_mut() {
                s.push(Op::Barrier);
            }
            // Read phase: each node reads a random subset of the words
            // (worker sets of ~nodes/2 per block) and bumps the shared
            // counter once.
            for (n, s) in scripts.iter_mut().enumerate() {
                for w in 0..WORDS {
                    if rng.next_below(2) == 1 {
                        s.push(Op::Read(word(w)));
                    }
                }
                s.push(Op::Rmw(counter(), Rmw::Add(1 + (phase + n) as u64 % 3)));
            }
            for s in scripts.iter_mut() {
                s.push(Op::Barrier);
            }
        }
        scripts
            .into_iter()
            .map(|ops| Box::new(ScriptProgram::new(ops)) as Box<dyn Program>)
            .collect()
    }
}

#[test]
fn random_sharing_matches_ground_truth_across_spectrum() {
    for seed in [0x1AB5_0001_u64, 0xC0FF_EE42, 0x7E57_5EED] {
        // Both engines: the adversarial write-racing workloads push the
        // sharded lanes' window protocol as hard as the protocols.
        for shards in [1, 2] {
            let app = RandomSharing { seed };
            let reports = check_app(&app, NODES, shards);
            assert_eq!(reports.len(), 9, "one cell per Figure 2 protocol");
            for r in &reports {
                assert!(
                    r.passed,
                    "seed {seed:#x} shards {shards}: {} x {} diverged from ground truth: {}",
                    r.app, r.protocol, r.detail
                );
            }
        }
    }
}
