//! The engine-mode differential oracle: the sharded conservative
//! parallel engine must be **bit-identical** to the serial reference —
//! same per-run cycle counts, same event counts, same full statistics
//! record, same final memory image and same per-node read streams —
//! across every application × protocol cell, for 2, 3, 4 and 8 lanes
//! (including lane counts that do not divide the node count, so the
//! lookahead matrix is exercised over uneven partitions).
//!
//! This is the strongest statement the sharded engine makes: it is a
//! pure wallclock optimization with no observable effect whatsoever.

use limitless::apps::{run_app_with_machine, App, Aq, Evolve, Mp3d, Smgrid, Tsp, Water, Worker};
use limitless::core::{CheckLevel, ProtocolSpec};
use limitless::machine::MachineConfig;

fn spectrum() -> Vec<ProtocolSpec> {
    vec![
        ProtocolSpec::zero_ptr(),
        ProtocolSpec::one_ptr_ack(),
        ProtocolSpec::one_ptr_lack(),
        ProtocolSpec::one_ptr_hw(),
        ProtocolSpec::limitless(2),
        ProtocolSpec::limitless(5),
        ProtocolSpec::dir1_sw(),
        ProtocolSpec::full_map(),
    ]
}

fn tiny_apps() -> Vec<Box<dyn App>> {
    vec![
        Box::new(Tsp {
            cities: 7,
            seed: 0x7591,
            code_blocks: 48,
        }),
        Box::new(Aq {
            tolerance: 0.2,
            split_depth: 2,
        }),
        Box::new(Smgrid {
            side: 17,
            levels: 2,
            sweeps: 2,
            cycles: 1,
        }),
        Box::new(Evolve {
            dims: 6,
            total_walks: 16,
            seed: 0xEE01,
        }),
        Box::new(Mp3d {
            particles: 96,
            cells_side: 4,
            steps: 2,
            seed: 0x3D,
        }),
        Box::new(Water {
            molecules: 8,
            steps: 2,
            seed: 7,
        }),
        Box::new(Worker {
            set_size: 5,
            blocks_per_node: 1,
            iterations: 3,
        }),
    ]
}

fn cfg(p: ProtocolSpec, shards: usize) -> MachineConfig {
    MachineConfig::builder()
        .nodes(8)
        .protocol(p)
        .victim_cache(true)
        // Full checking turns on the read-stream log, so the oracle
        // can compare the exact sequence of values every node read.
        .check_level(CheckLevel::Full)
        .shards(shards)
        .build()
}

/// Every application × protocol cell, serial vs 2, 3, 4 and 8 lanes:
/// every observable must match bit-for-bit. 3 lanes over 8 nodes gives
/// a 3/3/2 partition — an asymmetric lookahead matrix on the smallest
/// mesh; 8 lanes is the one-node-per-lane extreme.
#[test]
fn sharded_engine_is_bit_identical_to_serial() {
    for app in tiny_apps() {
        for p in spectrum() {
            let (serial, m_serial) = run_app_with_machine(app.as_ref(), cfg(p, 1));
            let image = m_serial.memory_image();
            let reads = m_serial.read_streams().expect("full check logs reads");
            for lanes in [2, 3, 4, 8] {
                let (sharded, m_sharded) = run_app_with_machine(app.as_ref(), cfg(p, lanes));
                let tag = format!("{} under {p} at {lanes} lanes", app.name());
                assert_eq!(serial.cycles, sharded.cycles, "cycles diverged: {tag}");
                assert_eq!(serial.events, sharded.events, "events diverged: {tag}");
                assert_eq!(serial.stats, sharded.stats, "stats diverged: {tag}");
                assert_eq!(
                    image,
                    m_sharded.memory_image(),
                    "memory image diverged: {tag}"
                );
                assert_eq!(
                    reads,
                    m_sharded.read_streams().expect("full check logs reads"),
                    "read streams diverged: {tag}"
                );
            }
        }
    }
}
