/root/repo/target/release/examples/livelock-cbd23c9325d19163.d: crates/bench/examples/livelock.rs

/root/repo/target/release/examples/livelock-cbd23c9325d19163: crates/bench/examples/livelock.rs

crates/bench/examples/livelock.rs:
