/root/repo/target/release/examples/spectrum_cycles-198fe5de2d7834f3.d: examples/spectrum_cycles.rs

/root/repo/target/release/examples/spectrum_cycles-198fe5de2d7834f3: examples/spectrum_cycles.rs

examples/spectrum_cycles.rs:
