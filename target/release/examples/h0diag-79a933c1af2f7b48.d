/root/repo/target/release/examples/h0diag-79a933c1af2f7b48.d: crates/bench/examples/h0diag.rs

/root/repo/target/release/examples/h0diag-79a933c1af2f7b48: crates/bench/examples/h0diag.rs

crates/bench/examples/h0diag.rs:
