/root/repo/target/release/deps/fig3_tsp64-c2c3dd1223c37292.d: crates/bench/benches/fig3_tsp64.rs

/root/repo/target/release/deps/fig3_tsp64-c2c3dd1223c37292: crates/bench/benches/fig3_tsp64.rs

crates/bench/benches/fig3_tsp64.rs:
