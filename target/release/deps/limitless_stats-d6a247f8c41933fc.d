/root/repo/target/release/deps/limitless_stats-d6a247f8c41933fc.d: crates/stats/src/lib.rs crates/stats/src/chart.rs crates/stats/src/export.rs crates/stats/src/hist.rs crates/stats/src/json.rs crates/stats/src/sampler.rs crates/stats/src/table.rs crates/stats/src/worker_sets.rs

/root/repo/target/release/deps/liblimitless_stats-d6a247f8c41933fc.rlib: crates/stats/src/lib.rs crates/stats/src/chart.rs crates/stats/src/export.rs crates/stats/src/hist.rs crates/stats/src/json.rs crates/stats/src/sampler.rs crates/stats/src/table.rs crates/stats/src/worker_sets.rs

/root/repo/target/release/deps/liblimitless_stats-d6a247f8c41933fc.rmeta: crates/stats/src/lib.rs crates/stats/src/chart.rs crates/stats/src/export.rs crates/stats/src/hist.rs crates/stats/src/json.rs crates/stats/src/sampler.rs crates/stats/src/table.rs crates/stats/src/worker_sets.rs

crates/stats/src/lib.rs:
crates/stats/src/chart.rs:
crates/stats/src/export.rs:
crates/stats/src/hist.rs:
crates/stats/src/json.rs:
crates/stats/src/sampler.rs:
crates/stats/src/table.rs:
crates/stats/src/worker_sets.rs:
