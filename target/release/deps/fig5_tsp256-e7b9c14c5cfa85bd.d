/root/repo/target/release/deps/fig5_tsp256-e7b9c14c5cfa85bd.d: crates/bench/benches/fig5_tsp256.rs

/root/repo/target/release/deps/fig5_tsp256-e7b9c14c5cfa85bd: crates/bench/benches/fig5_tsp256.rs

crates/bench/benches/fig5_tsp256.rs:
