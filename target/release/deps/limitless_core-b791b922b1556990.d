/root/repo/target/release/deps/limitless_core-b791b922b1556990.d: crates/core/src/lib.rs crates/core/src/cost.rs crates/core/src/engine.rs crates/core/src/enhancements.rs crates/core/src/iface.rs crates/core/src/msg.rs crates/core/src/spec.rs

/root/repo/target/release/deps/liblimitless_core-b791b922b1556990.rlib: crates/core/src/lib.rs crates/core/src/cost.rs crates/core/src/engine.rs crates/core/src/enhancements.rs crates/core/src/iface.rs crates/core/src/msg.rs crates/core/src/spec.rs

/root/repo/target/release/deps/liblimitless_core-b791b922b1556990.rmeta: crates/core/src/lib.rs crates/core/src/cost.rs crates/core/src/engine.rs crates/core/src/enhancements.rs crates/core/src/iface.rs crates/core/src/msg.rs crates/core/src/spec.rs

crates/core/src/lib.rs:
crates/core/src/cost.rs:
crates/core/src/engine.rs:
crates/core/src/enhancements.rs:
crates/core/src/iface.rs:
crates/core/src/msg.rs:
crates/core/src/spec.rs:
