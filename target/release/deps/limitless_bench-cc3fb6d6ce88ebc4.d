/root/repo/target/release/deps/limitless_bench-cc3fb6d6ce88ebc4.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs

/root/repo/target/release/deps/limitless_bench-cc3fb6d6ce88ebc4: crates/bench/src/lib.rs crates/bench/src/experiments.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
