/root/repo/target/release/deps/table3_apps-50f29ea69abebd8e.d: crates/bench/benches/table3_apps.rs

/root/repo/target/release/deps/table3_apps-50f29ea69abebd8e: crates/bench/benches/table3_apps.rs

crates/bench/benches/table3_apps.rs:
