/root/repo/target/release/deps/limitless_bench-8cae785e3b01fece.d: crates/bench/src/bin/cli.rs

/root/repo/target/release/deps/limitless_bench-8cae785e3b01fece: crates/bench/src/bin/cli.rs

crates/bench/src/bin/cli.rs:
