/root/repo/target/release/deps/limitless_bench-72b03e0360003e42.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs

/root/repo/target/release/deps/liblimitless_bench-72b03e0360003e42.rlib: crates/bench/src/lib.rs crates/bench/src/experiments.rs

/root/repo/target/release/deps/liblimitless_bench-72b03e0360003e42.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
