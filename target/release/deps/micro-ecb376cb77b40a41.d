/root/repo/target/release/deps/micro-ecb376cb77b40a41.d: crates/bench/benches/micro.rs

/root/repo/target/release/deps/micro-ecb376cb77b40a41: crates/bench/benches/micro.rs

crates/bench/benches/micro.rs:
