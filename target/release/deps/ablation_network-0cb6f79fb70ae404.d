/root/repo/target/release/deps/ablation_network-0cb6f79fb70ae404.d: crates/bench/benches/ablation_network.rs

/root/repo/target/release/deps/ablation_network-0cb6f79fb70ae404: crates/bench/benches/ablation_network.rs

crates/bench/benches/ablation_network.rs:
