/root/repo/target/release/deps/table1_latencies-811dd57112a9285b.d: crates/bench/benches/table1_latencies.rs

/root/repo/target/release/deps/table1_latencies-811dd57112a9285b: crates/bench/benches/table1_latencies.rs

crates/bench/benches/table1_latencies.rs:
