/root/repo/target/release/deps/ablation_localbit-cb5a36debfb943eb.d: crates/bench/benches/ablation_localbit.rs

/root/repo/target/release/deps/ablation_localbit-cb5a36debfb943eb: crates/bench/benches/ablation_localbit.rs

crates/bench/benches/ablation_localbit.rs:
