/root/repo/target/release/deps/limitless_apps-051ac335cf843328.d: crates/apps/src/lib.rs crates/apps/src/aq.rs crates/apps/src/evolve.rs crates/apps/src/layout.rs crates/apps/src/mp3d.rs crates/apps/src/smgrid.rs crates/apps/src/tsp.rs crates/apps/src/water.rs crates/apps/src/worker.rs

/root/repo/target/release/deps/liblimitless_apps-051ac335cf843328.rlib: crates/apps/src/lib.rs crates/apps/src/aq.rs crates/apps/src/evolve.rs crates/apps/src/layout.rs crates/apps/src/mp3d.rs crates/apps/src/smgrid.rs crates/apps/src/tsp.rs crates/apps/src/water.rs crates/apps/src/worker.rs

/root/repo/target/release/deps/liblimitless_apps-051ac335cf843328.rmeta: crates/apps/src/lib.rs crates/apps/src/aq.rs crates/apps/src/evolve.rs crates/apps/src/layout.rs crates/apps/src/mp3d.rs crates/apps/src/smgrid.rs crates/apps/src/tsp.rs crates/apps/src/water.rs crates/apps/src/worker.rs

crates/apps/src/lib.rs:
crates/apps/src/aq.rs:
crates/apps/src/evolve.rs:
crates/apps/src/layout.rs:
crates/apps/src/mp3d.rs:
crates/apps/src/smgrid.rs:
crates/apps/src/tsp.rs:
crates/apps/src/water.rs:
crates/apps/src/worker.rs:
