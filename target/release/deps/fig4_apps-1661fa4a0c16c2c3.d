/root/repo/target/release/deps/fig4_apps-1661fa4a0c16c2c3.d: crates/bench/benches/fig4_apps.rs

/root/repo/target/release/deps/fig4_apps-1661fa4a0c16c2c3: crates/bench/benches/fig4_apps.rs

crates/bench/benches/fig4_apps.rs:
