/root/repo/target/release/deps/limitless_bench-7ba06eb6ccd35562.d: crates/bench/src/bin/cli.rs

/root/repo/target/release/deps/limitless_bench-7ba06eb6ccd35562: crates/bench/src/bin/cli.rs

crates/bench/src/bin/cli.rs:
