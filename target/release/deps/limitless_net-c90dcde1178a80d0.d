/root/repo/target/release/deps/limitless_net-c90dcde1178a80d0.d: crates/net/src/lib.rs crates/net/src/message.rs crates/net/src/network.rs crates/net/src/topology.rs

/root/repo/target/release/deps/liblimitless_net-c90dcde1178a80d0.rlib: crates/net/src/lib.rs crates/net/src/message.rs crates/net/src/network.rs crates/net/src/topology.rs

/root/repo/target/release/deps/liblimitless_net-c90dcde1178a80d0.rmeta: crates/net/src/lib.rs crates/net/src/message.rs crates/net/src/network.rs crates/net/src/topology.rs

crates/net/src/lib.rs:
crates/net/src/message.rs:
crates/net/src/network.rs:
crates/net/src/topology.rs:
