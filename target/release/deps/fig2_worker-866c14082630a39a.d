/root/repo/target/release/deps/fig2_worker-866c14082630a39a.d: crates/bench/benches/fig2_worker.rs

/root/repo/target/release/deps/fig2_worker-866c14082630a39a: crates/bench/benches/fig2_worker.rs

crates/bench/benches/fig2_worker.rs:
