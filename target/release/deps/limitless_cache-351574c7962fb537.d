/root/repo/target/release/deps/limitless_cache-351574c7962fb537.d: crates/cache/src/lib.rs crates/cache/src/direct.rs crates/cache/src/ifetch.rs crates/cache/src/system.rs crates/cache/src/victim.rs

/root/repo/target/release/deps/liblimitless_cache-351574c7962fb537.rlib: crates/cache/src/lib.rs crates/cache/src/direct.rs crates/cache/src/ifetch.rs crates/cache/src/system.rs crates/cache/src/victim.rs

/root/repo/target/release/deps/liblimitless_cache-351574c7962fb537.rmeta: crates/cache/src/lib.rs crates/cache/src/direct.rs crates/cache/src/ifetch.rs crates/cache/src/system.rs crates/cache/src/victim.rs

crates/cache/src/lib.rs:
crates/cache/src/direct.rs:
crates/cache/src/ifetch.rs:
crates/cache/src/system.rs:
crates/cache/src/victim.rs:
