/root/repo/target/release/deps/limitless-988b69be3c171502.d: src/lib.rs

/root/repo/target/release/deps/liblimitless-988b69be3c171502.rlib: src/lib.rs

/root/repo/target/release/deps/liblimitless-988b69be3c171502.rmeta: src/lib.rs

src/lib.rs:
