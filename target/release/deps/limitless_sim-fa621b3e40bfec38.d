/root/repo/target/release/deps/limitless_sim-fa621b3e40bfec38.d: crates/sim/src/lib.rs crates/sim/src/ids.rs crates/sim/src/queue.rs crates/sim/src/rng.rs crates/sim/src/time.rs

/root/repo/target/release/deps/liblimitless_sim-fa621b3e40bfec38.rlib: crates/sim/src/lib.rs crates/sim/src/ids.rs crates/sim/src/queue.rs crates/sim/src/rng.rs crates/sim/src/time.rs

/root/repo/target/release/deps/liblimitless_sim-fa621b3e40bfec38.rmeta: crates/sim/src/lib.rs crates/sim/src/ids.rs crates/sim/src/queue.rs crates/sim/src/rng.rs crates/sim/src/time.rs

crates/sim/src/lib.rs:
crates/sim/src/ids.rs:
crates/sim/src/queue.rs:
crates/sim/src/rng.rs:
crates/sim/src/time.rs:
