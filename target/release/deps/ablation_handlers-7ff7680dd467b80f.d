/root/repo/target/release/deps/ablation_handlers-7ff7680dd467b80f.d: crates/bench/benches/ablation_handlers.rs

/root/repo/target/release/deps/ablation_handlers-7ff7680dd467b80f: crates/bench/benches/ablation_handlers.rs

crates/bench/benches/ablation_handlers.rs:
