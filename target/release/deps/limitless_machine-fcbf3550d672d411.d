/root/repo/target/release/deps/limitless_machine-fcbf3550d672d411.d: crates/machine/src/lib.rs crates/machine/src/config.rs crates/machine/src/machine.rs crates/machine/src/program.rs crates/machine/src/registry.rs crates/machine/src/stats.rs

/root/repo/target/release/deps/liblimitless_machine-fcbf3550d672d411.rlib: crates/machine/src/lib.rs crates/machine/src/config.rs crates/machine/src/machine.rs crates/machine/src/program.rs crates/machine/src/registry.rs crates/machine/src/stats.rs

/root/repo/target/release/deps/liblimitless_machine-fcbf3550d672d411.rmeta: crates/machine/src/lib.rs crates/machine/src/config.rs crates/machine/src/machine.rs crates/machine/src/program.rs crates/machine/src/registry.rs crates/machine/src/stats.rs

crates/machine/src/lib.rs:
crates/machine/src/config.rs:
crates/machine/src/machine.rs:
crates/machine/src/program.rs:
crates/machine/src/registry.rs:
crates/machine/src/stats.rs:
