/root/repo/target/release/deps/fig6_worker_sets-da5c3bb6b3a29b1d.d: crates/bench/benches/fig6_worker_sets.rs

/root/repo/target/release/deps/fig6_worker_sets-da5c3bb6b3a29b1d: crates/bench/benches/fig6_worker_sets.rs

crates/bench/benches/fig6_worker_sets.rs:
