/root/repo/target/release/deps/table2_breakdown-29b8233d0f6d1e44.d: crates/bench/benches/table2_breakdown.rs

/root/repo/target/release/deps/table2_breakdown-29b8233d0f6d1e44: crates/bench/benches/table2_breakdown.rs

crates/bench/benches/table2_breakdown.rs:
