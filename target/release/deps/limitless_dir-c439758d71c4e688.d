/root/repo/target/release/deps/limitless_dir-c439758d71c4e688.d: crates/dir/src/lib.rs crates/dir/src/hw.rs crates/dir/src/sw.rs

/root/repo/target/release/deps/liblimitless_dir-c439758d71c4e688.rlib: crates/dir/src/lib.rs crates/dir/src/hw.rs crates/dir/src/sw.rs

/root/repo/target/release/deps/liblimitless_dir-c439758d71c4e688.rmeta: crates/dir/src/lib.rs crates/dir/src/hw.rs crates/dir/src/sw.rs

crates/dir/src/lib.rs:
crates/dir/src/hw.rs:
crates/dir/src/sw.rs:
