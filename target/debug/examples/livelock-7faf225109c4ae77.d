/root/repo/target/debug/examples/livelock-7faf225109c4ae77.d: crates/bench/examples/livelock.rs

/root/repo/target/debug/examples/livelock-7faf225109c4ae77: crates/bench/examples/livelock.rs

crates/bench/examples/livelock.rs:
