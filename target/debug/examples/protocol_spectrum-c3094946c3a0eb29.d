/root/repo/target/debug/examples/protocol_spectrum-c3094946c3a0eb29.d: examples/protocol_spectrum.rs

/root/repo/target/debug/examples/protocol_spectrum-c3094946c3a0eb29: examples/protocol_spectrum.rs

examples/protocol_spectrum.rs:
