/root/repo/target/debug/examples/profile_and_optimize-b628bc80bb401d09.d: examples/profile_and_optimize.rs

/root/repo/target/debug/examples/profile_and_optimize-b628bc80bb401d09: examples/profile_and_optimize.rs

examples/profile_and_optimize.rs:
