/root/repo/target/debug/examples/quickstart-da4189096655b811.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-da4189096655b811: examples/quickstart.rs

examples/quickstart.rs:
