/root/repo/target/debug/examples/worker_sets-52b9fa082a03d63e.d: examples/worker_sets.rs

/root/repo/target/debug/examples/worker_sets-52b9fa082a03d63e: examples/worker_sets.rs

examples/worker_sets.rs:
