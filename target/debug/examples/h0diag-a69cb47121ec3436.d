/root/repo/target/debug/examples/h0diag-a69cb47121ec3436.d: crates/bench/examples/h0diag.rs

/root/repo/target/debug/examples/h0diag-a69cb47121ec3436: crates/bench/examples/h0diag.rs

crates/bench/examples/h0diag.rs:
