/root/repo/target/debug/examples/custom_protocol-28211badfebab036.d: examples/custom_protocol.rs

/root/repo/target/debug/examples/custom_protocol-28211badfebab036: examples/custom_protocol.rs

examples/custom_protocol.rs:
