/root/repo/target/debug/deps/limitless-e75ec6977b7bb609.d: src/lib.rs

/root/repo/target/debug/deps/liblimitless-e75ec6977b7bb609.rlib: src/lib.rs

/root/repo/target/debug/deps/liblimitless-e75ec6977b7bb609.rmeta: src/lib.rs

src/lib.rs:
