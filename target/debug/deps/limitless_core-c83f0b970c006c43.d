/root/repo/target/debug/deps/limitless_core-c83f0b970c006c43.d: crates/core/src/lib.rs crates/core/src/cost.rs crates/core/src/engine.rs crates/core/src/enhancements.rs crates/core/src/iface.rs crates/core/src/msg.rs crates/core/src/spec.rs

/root/repo/target/debug/deps/limitless_core-c83f0b970c006c43: crates/core/src/lib.rs crates/core/src/cost.rs crates/core/src/engine.rs crates/core/src/enhancements.rs crates/core/src/iface.rs crates/core/src/msg.rs crates/core/src/spec.rs

crates/core/src/lib.rs:
crates/core/src/cost.rs:
crates/core/src/engine.rs:
crates/core/src/enhancements.rs:
crates/core/src/iface.rs:
crates/core/src/msg.rs:
crates/core/src/spec.rs:
