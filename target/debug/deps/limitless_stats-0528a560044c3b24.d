/root/repo/target/debug/deps/limitless_stats-0528a560044c3b24.d: crates/stats/src/lib.rs crates/stats/src/chart.rs crates/stats/src/export.rs crates/stats/src/hist.rs crates/stats/src/json.rs crates/stats/src/sampler.rs crates/stats/src/table.rs crates/stats/src/worker_sets.rs

/root/repo/target/debug/deps/liblimitless_stats-0528a560044c3b24.rlib: crates/stats/src/lib.rs crates/stats/src/chart.rs crates/stats/src/export.rs crates/stats/src/hist.rs crates/stats/src/json.rs crates/stats/src/sampler.rs crates/stats/src/table.rs crates/stats/src/worker_sets.rs

/root/repo/target/debug/deps/liblimitless_stats-0528a560044c3b24.rmeta: crates/stats/src/lib.rs crates/stats/src/chart.rs crates/stats/src/export.rs crates/stats/src/hist.rs crates/stats/src/json.rs crates/stats/src/sampler.rs crates/stats/src/table.rs crates/stats/src/worker_sets.rs

crates/stats/src/lib.rs:
crates/stats/src/chart.rs:
crates/stats/src/export.rs:
crates/stats/src/hist.rs:
crates/stats/src/json.rs:
crates/stats/src/sampler.rs:
crates/stats/src/table.rs:
crates/stats/src/worker_sets.rs:
