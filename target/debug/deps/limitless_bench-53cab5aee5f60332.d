/root/repo/target/debug/deps/limitless_bench-53cab5aee5f60332.d: crates/bench/src/bin/cli.rs

/root/repo/target/debug/deps/limitless_bench-53cab5aee5f60332: crates/bench/src/bin/cli.rs

crates/bench/src/bin/cli.rs:
