/root/repo/target/debug/deps/limitless_net-ede0851d11cced31.d: crates/net/src/lib.rs crates/net/src/message.rs crates/net/src/network.rs crates/net/src/topology.rs

/root/repo/target/debug/deps/liblimitless_net-ede0851d11cced31.rlib: crates/net/src/lib.rs crates/net/src/message.rs crates/net/src/network.rs crates/net/src/topology.rs

/root/repo/target/debug/deps/liblimitless_net-ede0851d11cced31.rmeta: crates/net/src/lib.rs crates/net/src/message.rs crates/net/src/network.rs crates/net/src/topology.rs

crates/net/src/lib.rs:
crates/net/src/message.rs:
crates/net/src/network.rs:
crates/net/src/topology.rs:
