/root/repo/target/debug/deps/spectrum-21428fd1bab66a5e.d: tests/spectrum.rs

/root/repo/target/debug/deps/spectrum-21428fd1bab66a5e: tests/spectrum.rs

tests/spectrum.rs:
