/root/repo/target/debug/deps/limitless_dir-e7700a9b5bd652c3.d: crates/dir/src/lib.rs crates/dir/src/hw.rs crates/dir/src/sw.rs

/root/repo/target/debug/deps/limitless_dir-e7700a9b5bd652c3: crates/dir/src/lib.rs crates/dir/src/hw.rs crates/dir/src/sw.rs

crates/dir/src/lib.rs:
crates/dir/src/hw.rs:
crates/dir/src/sw.rs:
