/root/repo/target/debug/deps/limitless_cache-9e87210d1bae11e4.d: crates/cache/src/lib.rs crates/cache/src/direct.rs crates/cache/src/ifetch.rs crates/cache/src/system.rs crates/cache/src/victim.rs

/root/repo/target/debug/deps/limitless_cache-9e87210d1bae11e4: crates/cache/src/lib.rs crates/cache/src/direct.rs crates/cache/src/ifetch.rs crates/cache/src/system.rs crates/cache/src/victim.rs

crates/cache/src/lib.rs:
crates/cache/src/direct.rs:
crates/cache/src/ifetch.rs:
crates/cache/src/system.rs:
crates/cache/src/victim.rs:
