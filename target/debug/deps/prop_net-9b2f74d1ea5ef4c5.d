/root/repo/target/debug/deps/prop_net-9b2f74d1ea5ef4c5.d: crates/net/tests/prop_net.rs

/root/repo/target/debug/deps/prop_net-9b2f74d1ea5ef4c5: crates/net/tests/prop_net.rs

crates/net/tests/prop_net.rs:
