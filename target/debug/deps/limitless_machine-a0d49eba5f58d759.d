/root/repo/target/debug/deps/limitless_machine-a0d49eba5f58d759.d: crates/machine/src/lib.rs crates/machine/src/config.rs crates/machine/src/machine.rs crates/machine/src/program.rs crates/machine/src/registry.rs crates/machine/src/stats.rs crates/machine/src/tests.rs

/root/repo/target/debug/deps/limitless_machine-a0d49eba5f58d759: crates/machine/src/lib.rs crates/machine/src/config.rs crates/machine/src/machine.rs crates/machine/src/program.rs crates/machine/src/registry.rs crates/machine/src/stats.rs crates/machine/src/tests.rs

crates/machine/src/lib.rs:
crates/machine/src/config.rs:
crates/machine/src/machine.rs:
crates/machine/src/program.rs:
crates/machine/src/registry.rs:
crates/machine/src/stats.rs:
crates/machine/src/tests.rs:
