/root/repo/target/debug/deps/limitless_bench-632f3ef4c2fa71a5.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs

/root/repo/target/debug/deps/limitless_bench-632f3ef4c2fa71a5: crates/bench/src/lib.rs crates/bench/src/experiments.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
