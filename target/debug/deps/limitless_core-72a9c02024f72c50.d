/root/repo/target/debug/deps/limitless_core-72a9c02024f72c50.d: crates/core/src/lib.rs crates/core/src/cost.rs crates/core/src/engine.rs crates/core/src/enhancements.rs crates/core/src/iface.rs crates/core/src/msg.rs crates/core/src/spec.rs

/root/repo/target/debug/deps/liblimitless_core-72a9c02024f72c50.rlib: crates/core/src/lib.rs crates/core/src/cost.rs crates/core/src/engine.rs crates/core/src/enhancements.rs crates/core/src/iface.rs crates/core/src/msg.rs crates/core/src/spec.rs

/root/repo/target/debug/deps/liblimitless_core-72a9c02024f72c50.rmeta: crates/core/src/lib.rs crates/core/src/cost.rs crates/core/src/engine.rs crates/core/src/enhancements.rs crates/core/src/iface.rs crates/core/src/msg.rs crates/core/src/spec.rs

crates/core/src/lib.rs:
crates/core/src/cost.rs:
crates/core/src/engine.rs:
crates/core/src/enhancements.rs:
crates/core/src/iface.rs:
crates/core/src/msg.rs:
crates/core/src/spec.rs:
