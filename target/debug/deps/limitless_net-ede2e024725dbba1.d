/root/repo/target/debug/deps/limitless_net-ede2e024725dbba1.d: crates/net/src/lib.rs crates/net/src/message.rs crates/net/src/network.rs crates/net/src/topology.rs

/root/repo/target/debug/deps/limitless_net-ede2e024725dbba1: crates/net/src/lib.rs crates/net/src/message.rs crates/net/src/network.rs crates/net/src/topology.rs

crates/net/src/lib.rs:
crates/net/src/message.rs:
crates/net/src/network.rs:
crates/net/src/topology.rs:
