/root/repo/target/debug/deps/limitless-9b8caa6337405d6e.d: src/lib.rs

/root/repo/target/debug/deps/limitless-9b8caa6337405d6e: src/lib.rs

src/lib.rs:
