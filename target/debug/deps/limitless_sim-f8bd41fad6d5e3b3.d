/root/repo/target/debug/deps/limitless_sim-f8bd41fad6d5e3b3.d: crates/sim/src/lib.rs crates/sim/src/ids.rs crates/sim/src/queue.rs crates/sim/src/rng.rs crates/sim/src/time.rs

/root/repo/target/debug/deps/limitless_sim-f8bd41fad6d5e3b3: crates/sim/src/lib.rs crates/sim/src/ids.rs crates/sim/src/queue.rs crates/sim/src/rng.rs crates/sim/src/time.rs

crates/sim/src/lib.rs:
crates/sim/src/ids.rs:
crates/sim/src/queue.rs:
crates/sim/src/rng.rs:
crates/sim/src/time.rs:
