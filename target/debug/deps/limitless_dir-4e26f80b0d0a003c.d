/root/repo/target/debug/deps/limitless_dir-4e26f80b0d0a003c.d: crates/dir/src/lib.rs crates/dir/src/hw.rs crates/dir/src/sw.rs

/root/repo/target/debug/deps/liblimitless_dir-4e26f80b0d0a003c.rlib: crates/dir/src/lib.rs crates/dir/src/hw.rs crates/dir/src/sw.rs

/root/repo/target/debug/deps/liblimitless_dir-4e26f80b0d0a003c.rmeta: crates/dir/src/lib.rs crates/dir/src/hw.rs crates/dir/src/sw.rs

crates/dir/src/lib.rs:
crates/dir/src/hw.rs:
crates/dir/src/sw.rs:
