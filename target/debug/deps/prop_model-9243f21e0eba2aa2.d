/root/repo/target/debug/deps/prop_model-9243f21e0eba2aa2.d: crates/cache/tests/prop_model.rs

/root/repo/target/debug/deps/prop_model-9243f21e0eba2aa2: crates/cache/tests/prop_model.rs

crates/cache/tests/prop_model.rs:
