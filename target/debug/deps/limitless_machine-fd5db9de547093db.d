/root/repo/target/debug/deps/limitless_machine-fd5db9de547093db.d: crates/machine/src/lib.rs crates/machine/src/config.rs crates/machine/src/machine.rs crates/machine/src/program.rs crates/machine/src/registry.rs crates/machine/src/stats.rs

/root/repo/target/debug/deps/liblimitless_machine-fd5db9de547093db.rlib: crates/machine/src/lib.rs crates/machine/src/config.rs crates/machine/src/machine.rs crates/machine/src/program.rs crates/machine/src/registry.rs crates/machine/src/stats.rs

/root/repo/target/debug/deps/liblimitless_machine-fd5db9de547093db.rmeta: crates/machine/src/lib.rs crates/machine/src/config.rs crates/machine/src/machine.rs crates/machine/src/program.rs crates/machine/src/registry.rs crates/machine/src/stats.rs

crates/machine/src/lib.rs:
crates/machine/src/config.rs:
crates/machine/src/machine.rs:
crates/machine/src/program.rs:
crates/machine/src/registry.rs:
crates/machine/src/stats.rs:
