/root/repo/target/debug/deps/prop_queue-0189cc07c1a07906.d: crates/sim/tests/prop_queue.rs

/root/repo/target/debug/deps/prop_queue-0189cc07c1a07906: crates/sim/tests/prop_queue.rs

crates/sim/tests/prop_queue.rs:
