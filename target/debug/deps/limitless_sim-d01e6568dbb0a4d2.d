/root/repo/target/debug/deps/limitless_sim-d01e6568dbb0a4d2.d: crates/sim/src/lib.rs crates/sim/src/ids.rs crates/sim/src/queue.rs crates/sim/src/rng.rs crates/sim/src/time.rs

/root/repo/target/debug/deps/liblimitless_sim-d01e6568dbb0a4d2.rlib: crates/sim/src/lib.rs crates/sim/src/ids.rs crates/sim/src/queue.rs crates/sim/src/rng.rs crates/sim/src/time.rs

/root/repo/target/debug/deps/liblimitless_sim-d01e6568dbb0a4d2.rmeta: crates/sim/src/lib.rs crates/sim/src/ids.rs crates/sim/src/queue.rs crates/sim/src/rng.rs crates/sim/src/time.rs

crates/sim/src/lib.rs:
crates/sim/src/ids.rs:
crates/sim/src/queue.rs:
crates/sim/src/rng.rs:
crates/sim/src/time.rs:
