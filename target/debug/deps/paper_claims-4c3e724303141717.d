/root/repo/target/debug/deps/paper_claims-4c3e724303141717.d: tests/paper_claims.rs

/root/repo/target/debug/deps/paper_claims-4c3e724303141717: tests/paper_claims.rs

tests/paper_claims.rs:
