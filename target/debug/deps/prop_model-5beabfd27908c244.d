/root/repo/target/debug/deps/prop_model-5beabfd27908c244.d: crates/dir/tests/prop_model.rs

/root/repo/target/debug/deps/prop_model-5beabfd27908c244: crates/dir/tests/prop_model.rs

crates/dir/tests/prop_model.rs:
