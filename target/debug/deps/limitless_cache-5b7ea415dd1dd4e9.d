/root/repo/target/debug/deps/limitless_cache-5b7ea415dd1dd4e9.d: crates/cache/src/lib.rs crates/cache/src/direct.rs crates/cache/src/ifetch.rs crates/cache/src/system.rs crates/cache/src/victim.rs

/root/repo/target/debug/deps/liblimitless_cache-5b7ea415dd1dd4e9.rlib: crates/cache/src/lib.rs crates/cache/src/direct.rs crates/cache/src/ifetch.rs crates/cache/src/system.rs crates/cache/src/victim.rs

/root/repo/target/debug/deps/liblimitless_cache-5b7ea415dd1dd4e9.rmeta: crates/cache/src/lib.rs crates/cache/src/direct.rs crates/cache/src/ifetch.rs crates/cache/src/system.rs crates/cache/src/victim.rs

crates/cache/src/lib.rs:
crates/cache/src/direct.rs:
crates/cache/src/ifetch.rs:
crates/cache/src/system.rs:
crates/cache/src/victim.rs:
