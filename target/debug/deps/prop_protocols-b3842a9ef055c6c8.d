/root/repo/target/debug/deps/prop_protocols-b3842a9ef055c6c8.d: crates/machine/tests/prop_protocols.rs

/root/repo/target/debug/deps/prop_protocols-b3842a9ef055c6c8: crates/machine/tests/prop_protocols.rs

crates/machine/tests/prop_protocols.rs:
