/root/repo/target/debug/deps/limitless_bench-692f955abd9a7c3c.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs

/root/repo/target/debug/deps/liblimitless_bench-692f955abd9a7c3c.rlib: crates/bench/src/lib.rs crates/bench/src/experiments.rs

/root/repo/target/debug/deps/liblimitless_bench-692f955abd9a7c3c.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
